// Tests for the switch ASIC substrate: TCAM, PCIe bus, chassis, driver.
#include <gtest/gtest.h>

#include "asic/driver.h"
#include "asic/pcie.h"
#include "asic/switch.h"
#include "asic/tcam.h"

namespace farm::asic {
namespace {

using net::Filter;
using net::FlowSpec;
using net::Ipv4;
using net::PacketHeader;
using net::Prefix;
using net::Proto;
using sim::Duration;
using sim::Engine;
using sim::TimePoint;

PacketHeader mk_packet(Ipv4 src, Ipv4 dst, std::uint16_t dport) {
  return {src, dst, 40000, dport, Proto::kTcp, {}, 1000};
}

TEST(TcamTest, RegionCapacityIsFenced) {
  Tcam tcam(10, 4);
  EXPECT_EQ(tcam.capacity(TcamRegion::kMonitoring), 4);
  EXPECT_EQ(tcam.capacity(TcamRegion::kForwarding), 6);
  for (int i = 0; i < 4; ++i) {
    TcamRule r;
    r.region = TcamRegion::kMonitoring;
    r.pattern = Filter::l4_port(static_cast<std::uint16_t>(80 + i));
    EXPECT_TRUE(tcam.add_rule(r)) << i;
  }
  TcamRule overflow;
  overflow.region = TcamRegion::kMonitoring;
  overflow.pattern = Filter::l4_port(99);
  EXPECT_FALSE(tcam.add_rule(overflow));
  // Forwarding region unaffected by monitoring exhaustion.
  overflow.region = TcamRegion::kForwarding;
  EXPECT_TRUE(tcam.add_rule(overflow));
}

TEST(TcamTest, HighestPriorityWins) {
  Tcam tcam(10, 10);
  TcamRule lo, hi;
  lo.pattern = Filter::dst_ip(*Prefix::parse("10.0.0.0/8"));
  lo.priority = 1;
  lo.action = RuleAction::kForward;
  hi.pattern = Filter::dst_ip(*Prefix::parse("10.1.0.0/16"));
  hi.priority = 5;
  hi.action = RuleAction::kDrop;
  tcam.add_rule(lo);
  tcam.add_rule(hi);
  auto* m = tcam.match(mk_packet(Ipv4(1, 1, 1, 1), Ipv4(10, 1, 2, 3), 80));
  ASSERT_TRUE(m);
  EXPECT_EQ(m->action, RuleAction::kDrop);
  auto* m2 = tcam.match(mk_packet(Ipv4(1, 1, 1, 1), Ipv4(10, 2, 2, 3), 80));
  ASSERT_TRUE(m2);
  EXPECT_EQ(m2->action, RuleAction::kForward);
}

TEST(TcamTest, RemoveByPatternAndById) {
  Tcam tcam(10, 10);
  TcamRule r;
  r.pattern = Filter::l4_port(443);
  auto id = tcam.add_rule(r);
  ASSERT_TRUE(id);
  EXPECT_TRUE(tcam.find(*id));
  EXPECT_EQ(tcam.remove_rules(Filter::l4_port(443), TcamRegion::kMonitoring),
            1);
  EXPECT_FALSE(tcam.find(*id));
  EXPECT_FALSE(tcam.remove_rule(*id));
}

TEST(PcieBusTest, TransferTimeMatchesBandwidth) {
  Engine e;
  // 8 Mbps, no overhead: 1000 entries × kStatEntryBytes × 8 bits.
  PcieBus bus(e, 8e6, Duration{});
  const auto expected = Duration::from_seconds(
      1000.0 * sim::cost::kStatEntryBytes * 8 / 8e6);
  bool done = false;
  bus.request(1000, [&] { done = true; });
  e.run_for(expected - Duration::us(10));
  EXPECT_FALSE(done);
  e.run_for(Duration::us(20));
  EXPECT_TRUE(done);
}

TEST(PcieBusTest, RequestsSerialize) {
  Engine e;
  PcieBus bus(e, 8e6, Duration{});
  const auto one = Duration::from_seconds(
      1000.0 * sim::cost::kStatEntryBytes * 8 / 8e6);
  int done = 0;
  bus.request(1000, [&] { ++done; });
  bus.request(1000, [&] { ++done; });  // completes after 2× one
  e.run_for(one + one / 2);
  EXPECT_EQ(done, 1);
  EXPECT_GT(bus.backlog(), Duration{});
  e.run_for(one);
  EXPECT_EQ(done, 2);
}

TEST(PcieBusTest, BacklogGrowsWhenOversubscribed) {
  Engine e;
  PcieBus bus(e, 8e6, Duration{});
  for (int i = 0; i < 100; ++i) bus.request(1000, {});
  const auto one = Duration::from_seconds(
      1000.0 * sim::cost::kStatEntryBytes * 8 / 8e6);
  EXPECT_GT(bus.backlog(), one * 95);
  EXPECT_EQ(bus.bytes_transferred(),
            100u * 1000 * sim::cost::kStatEntryBytes);
}

SwitchConfig small_config() {
  SwitchConfig c;
  c.n_ifaces = 8;
  c.cpu_cores = 4;
  return c;
}

TEST(SwitchTest, FlowUpdatesPortCounters) {
  Engine e;
  SwitchChassis sw(e, 0, "sw0", small_config(), 1);
  FlowSpec f;
  f.key = {Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 100, 200, Proto::kTcp};
  f.rate_bps = 8e6;  // 1 MB/s
  f.packet_bytes = 1000;
  sw.apply_flow(f, 2, 5, Duration::ms(100));
  EXPECT_EQ(sw.port_stats(2).rx_bytes, 100'000u);
  EXPECT_EQ(sw.port_stats(5).tx_bytes, 100'000u);
  EXPECT_EQ(sw.port_stats(2).rx_packets, 100u);
  EXPECT_EQ(sw.port_stats(3).rx_bytes, 0u);
}

TEST(SwitchTest, DropRuleZeroesForwardedRate) {
  Engine e;
  SwitchChassis sw(e, 0, "sw0", small_config(), 1);
  TcamRule r;
  r.pattern = Filter::dst_ip(Prefix::host(Ipv4(2, 2, 2, 2)));
  r.action = RuleAction::kDrop;
  r.region = TcamRegion::kForwarding;
  sw.tcam().add_rule(r);
  FlowSpec f;
  f.key = {Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 100, 200, Proto::kTcp};
  f.rate_bps = 8e6;
  double out = sw.apply_flow(f, 0, 1, Duration::ms(100));
  EXPECT_EQ(out, 0);
  // rx counted (traffic arrived), tx not (dropped).
  EXPECT_GT(sw.port_stats(0).rx_bytes, 0u);
  EXPECT_EQ(sw.port_stats(1).tx_bytes, 0u);
  // Rule hit counters account the arriving traffic.
  EXPECT_GT(sw.tcam().rules()[0].hit_bytes, 0u);
}

TEST(SwitchTest, RateLimitCapsForwardedRate) {
  Engine e;
  SwitchChassis sw(e, 0, "sw0", small_config(), 1);
  TcamRule r;
  r.pattern = Filter::dst_ip(Prefix::host(Ipv4(2, 2, 2, 2)));
  r.action = RuleAction::kRateLimit;
  r.rate_limit_bps = 1e6;
  sw.tcam().add_rule(r);
  FlowSpec f;
  f.key = {Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 100, 200, Proto::kTcp};
  f.rate_bps = 8e6;
  EXPECT_DOUBLE_EQ(sw.apply_flow(f, 0, 1, Duration::ms(10)), 1e6);
  f.rate_bps = 0.5e6;  // below the cap: untouched
  EXPECT_DOUBLE_EQ(sw.apply_flow(f, 0, 1, Duration::ms(10)), 0.5e6);
}

TEST(SwitchTest, SamplerSeesExpectedFraction) {
  Engine e;
  SwitchChassis sw(e, 0, "sw0", small_config(), 1);
  std::uint64_t sampled = 0;
  sw.add_sampler(0.01, [&](const PacketHeader&, std::uint64_t n) {
    sampled += n;
  });
  FlowSpec f;
  f.key = {Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 100, 200, Proto::kTcp};
  f.rate_bps = 8e8;  // 100k packets/s at 1000 B
  f.packet_bytes = 1000;
  for (int i = 0; i < 100; ++i) sw.apply_flow(f, 0, 1, Duration::ms(10));
  // 100k packets total, 1% ≈ 1000 samples.
  EXPECT_NEAR(static_cast<double>(sampled), 1000, 20);
}

TEST(SwitchTest, MirrorRuleDeliversFullTraffic) {
  Engine e;
  SwitchChassis sw(e, 0, "sw0", small_config(), 1);
  TcamRule r;
  r.pattern = Filter::l4_port(80);
  r.action = RuleAction::kMirror;
  sw.tcam().add_rule(r);
  std::uint64_t mirrored = 0;
  sw.add_mirror_subscriber(
      [&](const PacketHeader&, std::uint64_t n) { mirrored += n; });
  FlowSpec f;
  f.key = {Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 40000, 80, Proto::kTcp};
  f.rate_bps = 8e6;
  f.packet_bytes = 1000;
  double out = sw.apply_flow(f, 0, 1, Duration::ms(100));
  EXPECT_DOUBLE_EQ(out, 8e6);  // mirroring does not affect forwarding
  EXPECT_EQ(mirrored, 100u);
}

TEST(SwitchTest, RemovedSamplerStopsReceiving) {
  Engine e;
  SwitchChassis sw(e, 0, "sw0", small_config(), 1);
  std::uint64_t n1 = 0;
  auto id = sw.add_sampler(1.0, [&](const PacketHeader&, std::uint64_t n) {
    n1 += n;
  });
  FlowSpec f;
  f.key = {Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 100, 200, Proto::kTcp};
  f.rate_bps = 8e6;
  f.packet_bytes = 1000;
  sw.apply_flow(f, 0, 1, Duration::ms(10));
  auto before = n1;
  EXPECT_GT(before, 0u);
  sw.remove_sampler(id);
  sw.apply_flow(f, 0, 1, Duration::ms(10));
  EXPECT_EQ(n1, before);
}

// End-to-end: a drop rule installed mid-path quenches delivery downstream.
TEST(TrafficDriverTest, DropRuleQuenchesDownstreamDelivery) {
  Engine e;
  auto sl =
      net::build_spine_leaf({.spines = 1, .leaves = 2, .hosts_per_leaf = 1});
  std::vector<SwitchChassis*> by_node(sl.topo.node_count(), nullptr);
  std::vector<std::unique_ptr<SwitchChassis>> owned;
  for (auto n : sl.topo.switches()) {
    SwitchConfig c;
    c.n_ifaces = static_cast<int>(sl.topo.neighbors(n).size());
    owned.push_back(
        std::make_unique<SwitchChassis>(e, n, sl.topo.node(n).name, c, n));
    by_node[n] = owned.back().get();
  }
  Ipv4 src = *sl.topo.node(sl.hosts_by_leaf[0][0]).address;
  Ipv4 dst = *sl.topo.node(sl.hosts_by_leaf[1][0]).address;
  net::FlowSchedule sched;
  FlowSpec f;
  f.key = {src, dst, 1000, 80, Proto::kTcp};
  f.rate_bps = 8e6;
  sched.add_forever(TimePoint::origin(), f);

  TrafficDriver driver(e, sl.topo, by_node, sched, Duration::ms(1));
  driver.start();
  e.run_for(Duration::ms(100));
  auto delivered_before = driver.bytes_delivered_to(sl.hosts_by_leaf[1][0]);
  EXPECT_GT(delivered_before, 0u);

  // Install a drop at the spine (mid-path reaction).
  TcamRule r;
  r.pattern = Filter::dst_ip(Prefix::host(dst));
  r.action = RuleAction::kDrop;
  by_node[sl.spine_switches[0]]->tcam().add_rule(r);
  e.run_for(Duration::ms(100));
  auto delivered_after = driver.bytes_delivered_to(sl.hosts_by_leaf[1][0]);
  EXPECT_EQ(delivered_after, delivered_before);  // nothing more arrived
  // The leaf upstream of the spine still saw the traffic arriving.
  EXPECT_GT(by_node[sl.spine_switches[0]]->tcam().rules()[0].hit_bytes, 0u);
}

TEST(TrafficDriverTest, CountersAccumulateAlongPath) {
  Engine e;
  auto sl =
      net::build_spine_leaf({.spines = 2, .leaves = 2, .hosts_per_leaf = 1});
  std::vector<SwitchChassis*> by_node(sl.topo.node_count(), nullptr);
  std::vector<std::unique_ptr<SwitchChassis>> owned;
  for (auto n : sl.topo.switches()) {
    SwitchConfig c;
    c.n_ifaces = static_cast<int>(sl.topo.neighbors(n).size());
    owned.push_back(
        std::make_unique<SwitchChassis>(e, n, sl.topo.node(n).name, c, n));
    by_node[n] = owned.back().get();
  }
  Ipv4 src = *sl.topo.node(sl.hosts_by_leaf[0][0]).address;
  Ipv4 dst = *sl.topo.node(sl.hosts_by_leaf[1][0]).address;
  net::FlowSchedule sched;
  FlowSpec f;
  f.key = {src, dst, 1000, 80, Proto::kTcp};
  f.rate_bps = 80e6;  // 10 MB/s
  sched.add_forever(TimePoint::origin(), f);
  TrafficDriver driver(e, sl.topo, by_node, sched, Duration::ms(1));
  driver.start();
  e.run_for(Duration::sec(1));
  // Both leaves carried the flow (one spine was chosen deterministically).
  std::uint64_t leaf0_rx = 0;
  auto* leaf0 = by_node[sl.leaf_switches[0]];
  for (int i = 0; i < leaf0->n_ifaces(); ++i)
    leaf0_rx += leaf0->port_stats(i).rx_bytes;
  EXPECT_NEAR(static_cast<double>(leaf0_rx), 10e6, 2e5);
  EXPECT_NEAR(static_cast<double>(
                  driver.bytes_delivered_to(sl.hosts_by_leaf[1][0])),
              10e6, 2e5);
}

}  // namespace
}  // namespace farm::asic
