// Fig. 7: global seed placement — utility (a) and runtime (b) of FARM's
// Algorithm-1 heuristic vs. the commodity MILP solver with two budgets.
//
// The paper runs Gurobi with 1 s and 10 min timeouts on up to 10200 seeds
// across 1040 switches. Our branch-and-bound stand-in lacks Gurobi's
// sparse-LP machinery, so the "long" budget is scaled to 15 s (results and
// the deviation are recorded in EXPERIMENTS.md): on small/medium
// instances it still reaches (near-)optimal incumbents, reproducing the
// utility parity; on huge instances it degrades to its start heuristic,
// while FARM's heuristic keeps both utility and runtime — the claim under
// test.
#include <cstdio>
#include <tuple>
#include <vector>

#include "bench_json.h"

#include "placement/generator.h"
#include "placement/heuristic.h"
#include "placement/milp_placement.h"

using namespace farm::placement;

int main() {
  std::printf("Fig. 7 — placement utility & runtime (10 tasks, 2 runs per "
              "size, 1040 switches at the top end)\n\n");
  std::printf("%7s %9s | %12s %12s %12s | %9s %9s %9s\n", "seeds", "switches",
              "MU(FARM)", "MU(MILP-1s)", "MU(MILP-15s)", "t(FARM)",
              "t(1s)", "t(15s)");
  farm::bench::BenchJson out("fig7_placement");

  struct Size {
    int switches;
    int seeds_per_task;
  };
  bool shape_ok = true;
  bool parity_seen = false;
  for (Size size : {Size{8, 2}, Size{16, 6}, Size{120, 48}, Size{520, 240},
                    Size{1040, 510}, Size{1040, 1020}}) {
    double mu_farm = 0, mu_1s = 0, mu_long = 0;
    double t_farm = 0, t_1s = 0, t_long = 0;
    const int kRuns = 2;
    int total_seeds = 10 * size.seeds_per_task;
    for (int run = 0; run < kRuns; ++run) {
      GeneratorSpec spec;
      spec.n_switches = size.switches;
      spec.n_tasks = 10;
      spec.seeds_per_task = size.seeds_per_task;
      spec.seed = static_cast<std::uint64_t>(run + 1) * 77;
      auto problem = generate_problem(spec);

      auto farm_result = solve_heuristic(problem);
      mu_farm += farm_result.total_utility / kRuns;
      t_farm += farm_result.solve_seconds / kRuns;

      auto milp_1s =
          solve_milp_placement(problem, {.timeout_seconds = 1});
      mu_1s += milp_1s.total_utility / kRuns;
      t_1s += milp_1s.solve_seconds / kRuns;

      auto milp_long =
          solve_milp_placement(problem, {.timeout_seconds = 15});
      mu_long += milp_long.total_utility / kRuns;
      t_long += milp_long.solve_seconds / kRuns;

      // Sanity: every produced placement satisfies (C1)-(C4).
      if (!validate_placement(problem, farm_result).empty() ||
          !validate_placement(problem, milp_1s).empty() ||
          !validate_placement(problem, milp_long).empty()) {
        std::printf("INVALID placement produced at %d seeds!\n", total_seeds);
        return 1;
      }
    }
    std::printf("%7d %9d | %12.0f %12.0f %12.0f | %8.2fs %8.2fs %8.2fs\n",
                total_seeds, size.switches, mu_farm, mu_1s, mu_long, t_farm,
                t_1s, t_long);
    for (auto [solver, mu, t] :
         {std::tuple<const char*, double, double>{"FARM", mu_farm, t_farm},
          {"MILP-1s", mu_1s, t_1s},
          {"MILP-15s", mu_long, t_long}}) {
      std::vector<farm::bench::BenchParam> params = {
          farm::bench::param("seeds", total_seeds),
          farm::bench::param("switches", size.switches),
          farm::bench::param("solver", solver)};
      out.record("monitoring_utility", mu, "MU", params);
      out.record("solve_time", t, "s", params);
    }
    // Shape: FARM's utility ≥ the 1 s solver run (ties allowed at sizes the
    // exact solver still finishes), with runtime in the ~1 s class.
    shape_ok &= mu_farm >= 0.99 * mu_1s;
    shape_ok &= t_farm < 30;
    // Parity with the long-budget solver at sizes it can actually solve
    // (the "similar utility to Gurobi(10 min)" end of Fig. 7a).
    if (mu_long > 1.02 * mu_1s || (total_seeds <= 100 && mu_long > 0))
      parity_seen |= mu_farm >= 0.85 * mu_long;
  }
  std::printf("\nFARM ≥ MILP(1s) utility at matched runtime: %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  std::printf("FARM ≈ long-budget solver where it solves exactly: %s\n",
              parity_seen ? "HOLDS" : "VIOLATED");
  return shape_ok && parity_seen ? 0 : 1;
}
