// Tests for virtual time and deterministic RNG.
#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"
#include "util/time.h"

namespace farm::util {
namespace {

TEST(DurationTest, ConstructorsAndConversions) {
  EXPECT_EQ(Duration::ms(3).count_ns(), 3'000'000);
  EXPECT_EQ(Duration::us(7).count_ns(), 7'000);
  EXPECT_EQ(Duration::sec(2).count_ns(), 2'000'000'000);
  EXPECT_EQ(Duration::minutes(1), Duration::sec(60));
  EXPECT_DOUBLE_EQ(Duration::ms(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::us(2500).millis(), 2.5);
}

TEST(DurationTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1e-9).count_ns(), 1);
  EXPECT_EQ(Duration::from_seconds(0.5).count_ns(), 500'000'000);
  EXPECT_EQ(Duration::from_seconds(1.9999999996).count_ns(), 2'000'000'000);
}

TEST(DurationTest, Arithmetic) {
  auto a = Duration::ms(5), b = Duration::ms(3);
  EXPECT_EQ((a + b).count_ns(), 8'000'000);
  EXPECT_EQ((a - b).count_ns(), 2'000'000);
  EXPECT_EQ((a * 3).count_ns(), 15'000'000);
  EXPECT_EQ((a / 5).count_ns(), 1'000'000);
  EXPECT_LT(b, a);
  EXPECT_TRUE(Duration{}.is_zero());
  EXPECT_TRUE(a.is_positive());
  EXPECT_FALSE((b - a).is_positive());
}

TEST(TimePointTest, OffsetAndDifference) {
  TimePoint t0 = TimePoint::origin();
  TimePoint t1 = t0 + Duration::sec(1);
  EXPECT_EQ((t1 - t0), Duration::sec(1));
  EXPECT_EQ(t1 - Duration::ms(200), t0 + Duration::ms(800));
  EXPECT_LT(t0, t1);
}

TEST(DurationTest, ToStringPicksNaturalUnit) {
  EXPECT_EQ(Duration::sec(2).to_string(), "2s");
  EXPECT_EQ(Duration::ms(15).to_string(), "15ms");
  EXPECT_EQ(Duration::us(7).to_string(), "7us");
  EXPECT_EQ(Duration::ns(13).to_string(), "13ns");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(RngTest, NextIntCoversClosedRange) {
  Rng rng(6);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= v == -3;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(8);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(9);
  std::map<std::uint64_t, int> hist;
  for (int i = 0; i < 5000; ++i) ++hist[rng.next_zipf(100, 1.2)];
  EXPECT_GT(hist[1], hist[10]);
  EXPECT_GT(hist[1], 500);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(10);
  std::vector<double> w{0, 1, 0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.next_weighted(w), 1u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(11);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace farm::util
