// Lightweight runtime-checking macros used across the FARM codebase.
//
// FARM_CHECK is always on (it guards invariants whose violation would make
// simulation results meaningless); FARM_DCHECK compiles out in NDEBUG
// builds and is reserved for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace farm::util {

// Last-gasp hook fired once before abort — the telemetry flight recorder
// uses it to dump the event tail of the failing run (see telemetry/hub.h).
using CheckFailureHook = void (*)();

inline CheckFailureHook& check_failure_hook() {
  static CheckFailureHook hook = nullptr;
  return hook;
}

inline void set_check_failure_hook(CheckFailureHook hook) {
  check_failure_hook() = hook;
}

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "FARM_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  if (CheckFailureHook hook = check_failure_hook()) {
    check_failure_hook() = nullptr;  // a CHECK inside the hook must not loop
    hook();
  }
  std::abort();
}

}  // namespace farm::util

#define FARM_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::farm::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define FARM_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::farm::util::check_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

#ifdef NDEBUG
#define FARM_DCHECK(expr) ((void)0)
#else
#define FARM_DCHECK(expr) FARM_CHECK(expr)
#endif
