#include "telemetry/trace.h"

#include <algorithm>

namespace farm::telemetry {

Tracer::Tracer(std::size_t track_capacity) : capacity_(track_capacity) {
  FARM_CHECK(capacity_ > 0);
}

TrackId Tracer::track(std::string_view name) {
  for (TrackId t = 0; t < tracks_.size(); ++t)
    if (tracks_[t].name == name) return t;
  Track tr;
  tr.name = std::string(name);
  tracks_.push_back(std::move(tr));
  return static_cast<TrackId>(tracks_.size() - 1);
}

SpanId Tracer::begin(TrackId t, std::string_view name, TimePoint at) {
  Track& tr = this->at(t);
  Span s;
  s.name = std::string(name);
  s.begin = at;
  s.depth = static_cast<std::uint32_t>(tr.open.size());
  s.id = next_span_++;
  tr.open.push_back(std::move(s));
  return tr.open.back().id;
}

void Tracer::end(TrackId t, SpanId id, TimePoint at) {
  if (id == kInvalidSpan) return;
  Track& tr = this->at(t);
  auto it = std::find_if(tr.open.begin(), tr.open.end(),
                         [id](const Span& s) { return s.id == id; });
  if (it == tr.open.end()) return;  // already ended / never begun: no-op
  Span s = std::move(*it);
  tr.open.erase(it);
  s.end = at;
  ++tr.completed;
  if (tr.done.size() < capacity_) {
    tr.done.push_back(std::move(s));
  } else {
    tr.done[tr.head] = std::move(s);
    tr.head = (tr.head + 1) % capacity_;
  }
}

std::vector<Span> Tracer::spans(TrackId t) const {
  std::vector<Span> out;
  out.reserve(at(t).done.size());
  for_each_span(t, [&out](const Span& s) { out.push_back(s); });
  return out;
}

void Tracer::for_each_span(
    TrackId t, const std::function<void(const Span&)>& fn) const {
  const Track& tr = at(t);
  // Two-segment walk of the ring, oldest retained → newest; `head` is 0
  // until the ring wraps, so the first loop covers the unwrapped case.
  for (std::size_t i = tr.head; i < tr.done.size(); ++i) fn(tr.done[i]);
  for (std::size_t i = 0; i < tr.head; ++i) fn(tr.done[i]);
}

}  // namespace farm::telemetry
