#include "sim/engine.h"

namespace farm::sim {

EventId Engine::schedule_at(TimePoint t, Callback cb) {
  FARM_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(cb)});
  live_.insert(id);
  return id;
}

EventId Engine::schedule_after(Duration d, Callback cb) {
  FARM_CHECK_MSG(d >= Duration{}, "negative delay");
  return schedule_at(now_ + d, std::move(cb));
}

void Engine::cancel(EventId id) {
  if (id != kInvalidEvent) live_.erase(id);
}

bool Engine::step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    if (!live_.erase(ev.id)) continue;  // cancelled tombstone
    now_ = ev.at;
    ++executed_;
    if (telemetry_) telemetry_->count(events_metric_);
    ev.cb();
    return true;
  }
  return false;
}

telemetry::Hub& Engine::telemetry() {
  if (!telemetry_) {
    telemetry_ = std::make_unique<telemetry::Hub>();
    telemetry_->set_clock([this] { return now_; });
    events_metric_ = telemetry_->counter("sim.engine.events");
  }
  return *telemetry_;
}

void Engine::run_until(TimePoint t) {
  while (!heap_.empty() && heap_.top().at <= t) {
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

void Engine::run() {
  while (step()) {
  }
}

PeriodicTask::PeriodicTask(Engine& engine, Duration period,
                           Engine::Callback cb)
    : engine_(engine), period_(period), cb_(std::move(cb)) {
  FARM_CHECK_MSG(period_.is_positive(), "period must be > 0");
}

void PeriodicTask::start() {
  if (active_) return;
  active_ = true;
  arm();
}

void PeriodicTask::stop() {
  active_ = false;
  engine_.cancel(pending_);
  pending_ = kInvalidEvent;
}

void PeriodicTask::set_period(Duration period) {
  FARM_CHECK_MSG(period.is_positive(), "period must be > 0");
  period_ = period;
  if (active_) {
    // Re-arm so the new rate applies immediately rather than after one
    // stale interval; seeds shrinking their polling period rely on this.
    engine_.cancel(pending_);
    arm();
  }
}

void PeriodicTask::arm() {
  pending_ = engine_.schedule_after(period_, [this] {
    pending_ = kInvalidEvent;
    cb_();
    // cb may have called stop() (active_ now false) or set_period()
    // (which already re-armed); only arm when neither happened.
    if (active_ && pending_ == kInvalidEvent) arm();
  });
}

}  // namespace farm::sim
