file(REMOVE_RECURSE
  "../bench/bench_fig9_aggregation"
  "../bench/bench_fig9_aggregation.pdb"
  "CMakeFiles/bench_fig9_aggregation.dir/bench_fig9_aggregation.cpp.o"
  "CMakeFiles/bench_fig9_aggregation.dir/bench_fig9_aggregation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
