// DDoS mitigation scenario (the intro's motivating workload).
//
// A 40-source volumetric attack floods one victim host. The DDoS task's
// seeds watch per-prefix byte counters, escalate to probing when volume
// spikes, and — once enough distinct sources are seen — install a local
// rate-limit on the victim prefix while reporting the source list to the
// harvester, which raises a global alarm when several ingress switches
// report independently. The example prints goodput at the victim before
// and after mitigation kicks in.
//
//   $ ./ddos_mitigation
#include <cstdio>

#include "farm/harvesters.h"
#include "farm/system.h"
#include "farm/usecases.h"
#include "net/traffic.h"

using namespace farm;

int main() {
  core::FarmSystemConfig config;
  config.topology = {.spines = 2, .leaves = 4, .hosts_per_leaf = 6};
  core::FarmSystem farm(config);

  core::DdosHarvester harvester(farm.engine(), "ddos");
  harvester.global_alarm_switches = 2;
  farm.bus().attach_harvester("ddos", harvester);

  // The victim lives in rack 1 (prefix 10.1.0.0/16).
  net::NodeId victim_host = farm.fabric().hosts_by_leaf[1][0];
  net::Ipv4 victim = *farm.topology().node(victim_host).address;

  const core::UseCase& ddos = core::use_case("DDoS");
  farm.install_task({
      .name = "ddos",
      .source = ddos.source,
      .machines = ddos.machines,
      .externals = {{"victimPrefix", almanac::Value(std::string("10.1.0.0/16"))},
                    {"byteThreshold", almanac::Value(std::int64_t{500'000})},
                    {"sourceThreshold", almanac::Value(std::int64_t{10})}},
  });

  // Background mice plus the attack starting at t = 1 s.
  util::Rng rng(7);
  net::FlowSchedule schedule = net::background_traffic(
      farm.topology(), rng, 40, 2e6, sim::Duration::sec(10));
  schedule.append(net::ddos_attack(farm.topology(), rng, victim,
                                   /*n_sources=*/40,
                                   /*per_source_rate_bps=*/20e6,
                                   sim::TimePoint::origin() + sim::Duration::sec(1),
                                   sim::Duration::sec(9)));
  farm.load_traffic(std::move(schedule));

  // Run and sample victim goodput each second.
  std::printf("%-6s %-14s %-10s %-8s\n", "t(s)", "delivered(MB/s)", "sources",
              "alarm");
  std::uint64_t last_delivered = 0;
  for (int second = 1; second <= 6; ++second) {
    farm.run_for(sim::Duration::sec(1));
    std::uint64_t delivered = farm.traffic()->bytes_delivered_to(victim_host);
    double rate_mbps = static_cast<double>(delivered - last_delivered) / 1e6;
    last_delivered = delivered;
    std::printf("%-6d %-14.1f %-10zu %-8s\n", second, rate_mbps,
                harvester.all_sources.size(),
                harvester.global_alarm ? "GLOBAL" : "-");
  }

  int limits = 0;
  for (auto n : farm.topology().switches())
    for (const auto& rule : farm.chassis(n).tcam().rules())
      if (rule.action == asic::RuleAction::kRateLimit) ++limits;
  std::printf("\n%d rate-limit rule(s) active; %zu attack sources identified\n",
              limits, harvester.all_sources.size());
  std::printf("victim goodput was capped locally — the flood never reached "
              "the collector path\n");
  return limits > 0 ? 0 : 1;
}
