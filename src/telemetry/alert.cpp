#include "telemetry/alert.h"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "telemetry/prof.h"
#include "util/pool.h"

namespace farm::telemetry {

// Instance-count floor for the parallel evaluation phase: below this the
// fan-out overhead beats the registry reads it distributes.
constexpr std::size_t kParallelAlerts = 256;

std::string to_string(SloKind kind) {
  switch (kind) {
    case SloKind::kThreshold: return "value";
    case SloKind::kRate: return "rate";
    case SloKind::kBurnRate: return "burn";
    case SloKind::kStaleness: return "staleness";
  }
  return "?";
}

std::string to_string(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

// --- Rule grammar ------------------------------------------------------------

namespace {

// Whitespace-tolerant cursor over the rule spec.
struct Cursor {
  std::string_view s;
  void skip_ws() {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
      s.remove_prefix(1);
  }
  bool literal(char c) {
    skip_ws();
    if (s.empty() || s.front() != c) return false;
    s.remove_prefix(1);
    return true;
  }
  // Token up to whitespace or one of `stops`.
  std::string_view token(std::string_view stops) {
    skip_ws();
    std::size_t i = 0;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])) &&
           stops.find(s[i]) == std::string_view::npos)
      ++i;
    std::string_view t = s.substr(0, i);
    s.remove_prefix(i);
    return t;
  }
  std::optional<double> number() {
    skip_ws();
    double v = 0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{}) return std::nullopt;
    s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
    return v;
  }
  std::optional<util::Duration> duration() {
    auto v = number();
    if (!v) return std::nullopt;
    std::string_view unit = token("");
    if (unit == "ns") return util::Duration::ns(static_cast<std::int64_t>(*v));
    if (unit == "us") return util::Duration::from_seconds(*v / 1e6);
    if (unit == "ms") return util::Duration::from_seconds(*v / 1e3);
    if (unit == "s") return util::Duration::from_seconds(*v);
    return std::nullopt;
  }
};

}  // namespace

std::optional<SloRule> SloRule::parse(std::string_view spec) {
  SloRule rule;
  Cursor c{spec};
  std::string_view name = c.token(":");
  if (name.empty() || !c.literal(':')) return std::nullopt;
  rule.name = std::string(name);

  std::string_view measure = c.token("(");
  if (measure == "value") rule.kind = SloKind::kThreshold;
  else if (measure == "rate") rule.kind = SloKind::kRate;
  else if (measure == "burn") rule.kind = SloKind::kBurnRate;
  else if (measure == "staleness") rule.kind = SloKind::kStaleness;
  else return std::nullopt;

  if (!c.literal('(')) return std::nullopt;
  std::string_view pattern = c.token(")");
  if (pattern.empty() || !c.literal(')')) return std::nullopt;
  rule.pattern = std::string(pattern);

  if (c.literal('>')) rule.op = SloOp::kGreater;
  else if (c.literal('<')) rule.op = SloOp::kLess;
  else return std::nullopt;
  auto threshold = c.number();
  if (!threshold) return std::nullopt;
  rule.threshold = *threshold;

  for (;;) {
    std::string_view clause = c.token("");
    if (clause.empty()) break;
    if (clause == "for") {
      auto d = c.duration();
      if (!d) return std::nullopt;
      rule.hold = *d;
    } else if (clause == "alpha") {
      auto a = c.number();
      if (!a || *a <= 0 || *a > 1) return std::nullopt;
      rule.alpha = *a;
    } else {
      return std::nullopt;
    }
  }
  return rule;
}

// --- AlertManager ------------------------------------------------------------

AlertManager::AlertManager(Hub& hub) : hub_(hub) {
  m_firing_total_ = hub_.gauge("alert.firing_total");
}

std::size_t AlertManager::add_rule(SloRule rule) {
  RuleMarks marks;
  marks.pending = hub_.counter("alert." + rule.name + ".pending");
  marks.firing = hub_.counter("alert." + rule.name + ".firing");
  marks.resolved = hub_.counter("alert." + rule.name + ".resolved");
  rules_.push_back(std::move(rule));
  marks_.push_back(marks);
  return rules_.size() - 1;
}

bool AlertManager::add_rule(std::string_view spec) {
  auto rule = SloRule::parse(spec);
  if (!rule) return false;
  add_rule(std::move(*rule));
  return true;
}

void AlertManager::discover(std::size_t rule_index) {
  const Registry& reg = hub_.registry();
  RuleMarks& marks = marks_[rule_index];
  for (MetricId id = static_cast<MetricId>(marks.scanned);
       id < reg.size(); ++id) {
    // The manager's own transition marks never feed rules — a staleness
    // rule on "alert.**" would otherwise alert on its own silence.
    const std::string& name = reg.name(id);
    if (name.rfind("alert.", 0) == 0) continue;
    if (!label_matches(name, rules_[rule_index].pattern)) continue;
    std::uint64_t key = (static_cast<std::uint64_t>(rule_index) << 32) | id;
    if (index_.count(key)) continue;
    Alert a;
    a.rule = rule_index;
    a.metric = id;
    index_.emplace(key, alerts_.size());
    alerts_.push_back(a);
  }
  marks.scanned = reg.size();
}

std::optional<double> AlertManager::measure(const SloRule& rule, Alert& a,
                                            TimePoint now) {
  const double raw = hub_.registry().value(a.metric);
  switch (rule.kind) {
    case SloKind::kThreshold:
      return raw;
    case SloKind::kRate:
    case SloKind::kBurnRate: {
      if (!a.seen) {
        a.seen = true;
        a.prev_raw = raw;
        a.prev_at = now;
        return std::nullopt;  // no interval yet
      }
      const double dt = (now - a.prev_at).seconds();
      if (dt <= 0) return a.ewma_primed ? std::optional(a.ewma) : std::nullopt;
      const double rate = (raw - a.prev_raw) / dt;
      a.prev_raw = raw;
      a.prev_at = now;
      if (rule.kind == SloKind::kRate) return rate;
      a.ewma = a.ewma_primed ? rule.alpha * rate + (1 - rule.alpha) * a.ewma
                             : rate;
      a.ewma_primed = true;
      return a.ewma;
    }
    case SloKind::kStaleness: {
      // "Active" = the live aggregate moved since the last tick; silence
      // is measured from the last movement, at evaluation granularity.
      if ((a.seen && raw != a.prev_raw) || (!a.ever_active && raw != 0)) {
        a.ever_active = true;
        a.last_active = now;
      }
      a.seen = true;
      a.prev_raw = raw;
      if (!a.ever_active) return std::nullopt;  // source never produced
      return (now - a.last_active).seconds();
    }
  }
  return std::nullopt;
}

AlertManager::Step AlertManager::step_alert(Alert& a, TimePoint now) {
  Step out;
  const SloRule& rule = rules_[a.rule];
  std::optional<double> m = measure(rule, a, now);
  if (!m) return out;
  a.value = *m;
  const bool breach = rule.op == SloOp::kGreater ? *m > rule.threshold
                                                 : *m < rule.threshold;
  const RuleMarks& marks = marks_[a.rule];
  auto go = [&](AlertState to) {
    a.state = to;
    switch (to) {
      case AlertState::kPending:
        a.pending_since = now;
        out.marks[out.n++] = {marks.pending, a.value};
        break;
      case AlertState::kFiring:
        a.firing_since = now;
        ++a.fires;
        out.marks[out.n++] = {marks.firing, a.value};
        break;
      case AlertState::kResolved:
        a.resolved_at = now;
        out.marks[out.n++] = {marks.resolved, a.value};
        break;
      case AlertState::kInactive:
        break;  // pending that cleared before the hold elapsed; no mark
    }
  };
  switch (a.state) {
    case AlertState::kInactive:
    case AlertState::kResolved:
      if (breach) {
        go(AlertState::kPending);
        if (!rule.hold.is_positive()) go(AlertState::kFiring);
      }
      break;
    case AlertState::kPending:
      if (!breach)
        a.state = AlertState::kInactive;  // cleared before the hold; silent
      else if (now - a.pending_since >= rule.hold)
        go(AlertState::kFiring);
      break;
    case AlertState::kFiring:
      if (!breach) go(AlertState::kResolved);
      break;
  }
  return out;
}

void AlertManager::evaluate(TimePoint now) {
  ++evaluations_;
  for (std::size_t r = 0; r < rules_.size(); ++r) discover(r);
  // Phase 1 — per-instance measure + state machine. Each step mutates only
  // its own Alert and reads only live registry aggregates, so large fleets
  // fan out on the Combine pool; small ones (the common case) stay on the
  // caller's thread where the fan-out would cost more than the work.
  std::vector<Step> steps(alerts_.size());
  util::ThreadPool& pool = util::ThreadPool::shared();
  // Both branches anchor each step at the profiler root so an alert's
  // profile path (and any Silo query scopes under it) is identical whether
  // the fleet fanned out or stayed sequential.
  if (alerts_.size() >= kParallelAlerts && pool.size() > 1) {
    pool.parallel_for(alerts_.size(), [&](std::size_t i) {
      FARM_PROF_TASK("scarecrow/alert_step");
      steps[i] = step_alert(alerts_[i], now);
    });
  } else {
    for (std::size_t i = 0; i < alerts_.size(); ++i) {
      FARM_PROF_TASK("scarecrow/alert_step");
      steps[i] = step_alert(alerts_[i], now);
    }
  }
  // Phase 2 — fold: emit the planned transition marks in alert index
  // order, the exact append sequence a sequential evaluation produces.
  for (const Step& s : steps) {
    transitions_ += static_cast<std::uint64_t>(s.n);
    for (int i = 0; i < s.n; ++i) hub_.mark(s.marks[i].first, s.marks[i].second);
  }
  hub_.level(m_firing_total_, static_cast<double>(firing_count()));
}

const Alert* AlertManager::find(std::string_view name,
                                std::string_view metric_label) const {
  for (const Alert& a : alerts_) {
    if (rules_[a.rule].name != name) continue;
    if (!metric_label.empty() &&
        hub_.registry().name(a.metric) != metric_label)
      continue;
    return &a;
  }
  return nullptr;
}

std::size_t AlertManager::firing_count() const {
  return static_cast<std::size_t>(
      std::count_if(alerts_.begin(), alerts_.end(), [](const Alert& a) {
        return a.state == AlertState::kFiring;
      }));
}

bool AlertManager::any_firing(std::string_view pattern) const {
  for (const Alert& a : alerts_)
    if (a.state == AlertState::kFiring &&
        label_matches(hub_.registry().name(a.metric), pattern))
      return true;
  return false;
}

}  // namespace farm::telemetry
