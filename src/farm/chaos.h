// ChaosController — applies sim-layer fault events to a FarmSystem.
//
// The fault subsystem (sim/fault.h) only knows integer ids and virtual
// time; this controller is the sink that turns each event into real
// consequences across the stack:
//   kLinkDown/kLinkUp     → topology liveness flip (paths recompute, the
//                           traffic driver reroutes around the dead link);
//   kSwitchCrash          → soil process dies (seeds, registrations, poll
//                           groups gone), chassis powers off (TCAM and port
//                           counters wiped, PCIe channel dead), node leaves
//                           path computation;
//   kSwitchReboot         → chassis powers back on with a clean slate and
//                           the node rejoins the fabric — the seeder's
//                           heartbeat notices and re-places seeds;
//   kPollLossStart/Stop   → PCIe request-loss window on that switch (polls
//                           time out and retry in the soil).
#pragma once

#include "farm/system.h"
#include "sim/fault.h"

namespace farm::core {

class ChaosController {
 public:
  // The plan's switch/link ids must be node ids of the system's topology.
  ChaosController(FarmSystem& system, sim::FaultPlan plan);

  void arm() { injector_.arm(); }
  void disarm() { injector_.disarm(); }
  const sim::FaultInjector& injector() const { return injector_; }

  // Target universe covering the whole fabric: every switch is crashable,
  // every switch-switch link is flappable. Host uplinks are excluded —
  // downing one just silences a host, which no component reacts to.
  static sim::ChaosSpec default_spec(const FarmSystem& system);

 private:
  void apply(const sim::FaultEvent& e);

  FarmSystem& system_;
  sim::FaultInjector injector_;
};

}  // namespace farm::core
