#include "almanac/interp.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace farm::almanac {

namespace {

double need_num(const Value& v, SourceLoc loc, const char* what) {
  if (!v.is_numeric())
    throw EvalError(std::string(what) + ": expected number, got " +
                        v.type_name(),
                    loc);
  return v.as_float();
}

// int64 range representable without undefined casts: [-2^63, 2^63) — the
// upper bound is exclusive because 2^63 itself rounds to a double that is
// out of range.
constexpr double kI64DblLo = -9223372036854775808.0;
constexpr double kI64DblHi = 9223372036854775808.0;

std::int64_t need_int(const Value& v, SourceLoc loc, const char* what) {
  if (v.is_int()) return v.as_int();
  if (v.is_float()) {
    double f = v.as_float();
    if (f == std::floor(f) && f >= kI64DblLo && f < kI64DblHi)
      return static_cast<std::int64_t>(f);
  }
  throw EvalError(std::string(what) + ": expected integer, got " +
                      v.to_string(),
                  loc);
}

std::int64_t checked_arith(std::int64_t a, std::int64_t b, BinOp op,
                           SourceLoc loc) {
  std::int64_t r = 0;
  bool ovf = op == BinOp::kAdd   ? __builtin_add_overflow(a, b, &r)
             : op == BinOp::kSub ? __builtin_sub_overflow(a, b, &r)
                                 : __builtin_mul_overflow(a, b, &r);
  if (ovf)
    throw EvalError(std::string("integer overflow in '") +
                        (op == BinOp::kAdd   ? "+"
                         : op == BinOp::kSub ? "-"
                                             : "*") +
                        "'",
                    loc);
  return r;
}

const net::Filter& need_filter(const Value& v, SourceLoc loc,
                               const char* what) {
  if (!v.is_filter())
    throw EvalError(std::string(what) + ": expected filter, got " +
                        v.type_name(),
                    loc);
  return v.as_filter();
}

}  // namespace

Value* Env::find(const std::string& name) {
  for (Env* e = this; e; e = e->parent_) {
    auto it = e->vars_.find(name);
    if (it != e->vars_.end()) return &it->second;
  }
  return nullptr;
}

const Value* Env::find(const std::string& name) const {
  return const_cast<Env*>(this)->find(name);
}

bool Env::assign(const std::string& name, Value v) {
  if (Value* slot = find(name)) {
    *slot = std::move(v);
    return true;
  }
  return false;
}

Value Interpreter::default_value(TypeName t) {
  switch (t) {
    case TypeName::kBool:
      return Value(false);
    case TypeName::kInt:
    case TypeName::kLong:
      return Value(std::int64_t{0});
    case TypeName::kFloat:
      return Value(0.0);
    case TypeName::kString:
      return Value(std::string{});
    case TypeName::kList:
      return Value::empty_list();
    case TypeName::kPacket:
      return Value(net::PacketHeader{});
    case TypeName::kAction:
      return Value(ActionValue{});
    case TypeName::kFilter:
      return Value(net::Filter{});
    case TypeName::kStats:
      return Value(StatsValue{});
    case TypeName::kRule:
      return Value(asic::TcamRule{});
    case TypeName::kSketch:
      return Value(SketchValue{});
    case TypeName::kVoid:
      return Value();
  }
  return Value();
}

bool Interpreter::matches_type(const Value& v, TypeName t) {
  switch (t) {
    case TypeName::kBool:
      return v.is_bool();
    case TypeName::kInt:
    case TypeName::kLong:
      return v.is_int();
    case TypeName::kFloat:
      return v.is_numeric();
    case TypeName::kString:
      return v.is_string();
    case TypeName::kList:
      return v.is_list();
    case TypeName::kPacket:
      return v.is_packet();
    case TypeName::kAction:
      return v.is_action();
    case TypeName::kFilter:
      return v.is_filter();
    case TypeName::kStats:
      return v.is_stats();
    case TypeName::kRule:
      return v.is_rule();
    case TypeName::kSketch:
      return v.is_sketch();
    case TypeName::kVoid:
      return v.is_nil();
  }
  return false;
}

Value Interpreter::eval(const Expr& e, Env& env) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kVarRef: {
      if (Value* v = env.find(e.name)) return *v;
      throw EvalError("undefined variable: " + e.name, e.loc);
    }
    case Expr::Kind::kFieldAccess:
      return eval_field(e, env);
    case Expr::Kind::kBinary:
      return eval_binary(e, env);
    case Expr::Kind::kNot: {
      Value v = eval(*e.args[0], env);
      if (v.is_bool()) return Value(!v.as_bool());
      if (v.is_filter()) return Value(net::Filter::negate(v.as_filter()));
      throw EvalError("'not' expects bool or filter, got " + v.type_name(),
                      e.loc);
    }
    case Expr::Kind::kCall:
      return eval_call(e, env);
    case Expr::Kind::kFilterAtom:
      return eval_filter_atom(e, env);
    case Expr::Kind::kStructInit:
      return eval_struct_init(e, env);
  }
  throw EvalError("unhandled expression", e.loc);
}

Value Interpreter::eval_binary(const Expr& e, Env& env) {
  const Expr& le = *e.args[0];
  const Expr& re = *e.args[1];
  // Short-circuit only applies to boolean operands; filters always need
  // both sides.
  Value lhs = eval(le, env);
  if (e.op == BinOp::kAnd && lhs.is_bool()) {
    if (!lhs.as_bool()) return Value(false);
    Value rhs = eval(re, env);
    if (rhs.is_bool()) return rhs;
    if (rhs.is_filter()) return rhs;  // true AND f == f
    throw EvalError("'and' expects bool or filter operands", e.loc);
  }
  if (e.op == BinOp::kOr && lhs.is_bool()) {
    if (lhs.as_bool()) return Value(true);
    Value rhs = eval(re, env);
    if (rhs.is_bool()) return rhs;
    if (rhs.is_filter()) return rhs;  // false OR f == f
    throw EvalError("'or' expects bool or filter operands", e.loc);
  }
  Value rhs = eval(re, env);

  switch (e.op) {
    case BinOp::kAnd:
    case BinOp::kOr: {
      if (lhs.is_filter() || rhs.is_filter()) {
        net::Filter lf = lhs.is_filter() ? lhs.as_filter() : net::Filter{};
        net::Filter rf = rhs.is_filter() ? rhs.as_filter() : net::Filter{};
        if (!lhs.is_filter() && !(lhs.is_bool() && lhs.as_bool()))
          throw EvalError("cannot combine non-filter with filter", e.loc);
        if (!rhs.is_filter() && !(rhs.is_bool() && rhs.as_bool()))
          throw EvalError("cannot combine filter with non-filter", e.loc);
        return Value(e.op == BinOp::kAnd ? net::Filter::conj(lf, rf)
                                         : net::Filter::disj(lf, rf));
      }
      throw EvalError("'and'/'or' expect bool or filter operands", e.loc);
    }
    case BinOp::kAdd:
      if (lhs.is_string() && rhs.is_string())
        return Value(lhs.as_string() + rhs.as_string());
      if (lhs.is_string() || rhs.is_string())
        return Value((lhs.is_string() ? lhs.as_string() : lhs.to_string()) +
                     (rhs.is_string() ? rhs.as_string() : rhs.to_string()));
      if (lhs.is_list() && rhs.is_list()) {
        auto out = std::make_shared<std::vector<Value>>(*lhs.as_list());
        out->insert(out->end(), rhs.as_list()->begin(), rhs.as_list()->end());
        return Value(std::move(out));
      }
      if (lhs.is_int() && rhs.is_int())
        return Value(checked_arith(lhs.as_int(), rhs.as_int(), e.op, e.loc));
      return Value(need_num(lhs, e.loc, "+") + need_num(rhs, e.loc, "+"));
    case BinOp::kSub:
      if (lhs.is_int() && rhs.is_int())
        return Value(checked_arith(lhs.as_int(), rhs.as_int(), e.op, e.loc));
      return Value(need_num(lhs, e.loc, "-") - need_num(rhs, e.loc, "-"));
    case BinOp::kMul:
      if (lhs.is_int() && rhs.is_int())
        return Value(checked_arith(lhs.as_int(), rhs.as_int(), e.op, e.loc));
      return Value(need_num(lhs, e.loc, "*") * need_num(rhs, e.loc, "*"));
    case BinOp::kDiv: {
      double denom = need_num(rhs, e.loc, "/");
      if (denom == 0) throw EvalError("division by zero", e.loc);
      if (lhs.is_int() && rhs.is_int()) {
        std::int64_t a = lhs.as_int();
        std::int64_t b = rhs.as_int();
        // INT64_MIN / -1 (and its % probe) overflows int64.
        if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
          throw EvalError("integer overflow in '/'", e.loc);
        if (a % b == 0) return Value(a / b);
      }
      return Value(need_num(lhs, e.loc, "/") / denom);
    }
    case BinOp::kEq:
      return Value(lhs.equals(rhs));
    case BinOp::kNe:
      return Value(!lhs.equals(rhs));
    case BinOp::kLe:
    case BinOp::kGe:
    case BinOp::kLt:
    case BinOp::kGt: {
      if (lhs.is_string() && rhs.is_string()) {
        int c = lhs.as_string().compare(rhs.as_string());
        switch (e.op) {
          case BinOp::kLe:
            return Value(c <= 0);
          case BinOp::kGe:
            return Value(c >= 0);
          case BinOp::kLt:
            return Value(c < 0);
          default:
            return Value(c > 0);
        }
      }
      double a = need_num(lhs, e.loc, "compare");
      double b = need_num(rhs, e.loc, "compare");
      switch (e.op) {
        case BinOp::kLe:
          return Value(a <= b);
        case BinOp::kGe:
          return Value(a >= b);
        case BinOp::kLt:
          return Value(a < b);
        default:
          return Value(a > b);
      }
    }
  }
  throw EvalError("unhandled binary operator", e.loc);
}

Value Interpreter::eval_filter_atom(const Expr& e, Env& env) {
  if (e.name == "port" && e.args.empty()) {
    // `port ANY`: every switch interface.
    return Value(net::Filter::any_iface());
  }
  if (e.name == "iface" && e.args.empty())
    return Value(net::Filter::any_iface());
  if (e.args.empty())
    throw EvalError("filter atom '" + e.name + "' needs an argument", e.loc);
  Value arg = eval(*e.args[0], env);
  if (e.name == "srcIP" || e.name == "dstIP") {
    if (!arg.is_string())
      throw EvalError(e.name + " expects a string prefix", e.loc);
    auto p = net::Prefix::parse(arg.as_string());
    if (!p)
      throw EvalError("malformed prefix: " + arg.as_string(), e.loc);
    return Value(e.name == "srcIP" ? net::Filter::src_ip(*p)
                                   : net::Filter::dst_ip(*p));
  }
  if (e.name == "proto") {
    const std::string& p = arg.as_string();
    if (p == "tcp") return Value(net::Filter::proto(net::Proto::kTcp));
    if (p == "udp") return Value(net::Filter::proto(net::Proto::kUdp));
    if (p == "icmp") return Value(net::Filter::proto(net::Proto::kIcmp));
    throw EvalError("unknown protocol: " + p, e.loc);
  }
  std::int64_t v = need_int(arg, e.loc, e.name.c_str());
  if (e.name == "port")
    return Value(net::Filter::l4_port(static_cast<std::uint16_t>(v)));
  if (e.name == "srcPort")
    return Value(net::Filter::src_port(static_cast<std::uint16_t>(v),
                                       static_cast<std::uint16_t>(v)));
  if (e.name == "dstPort")
    return Value(net::Filter::dst_port(static_cast<std::uint16_t>(v),
                                       static_cast<std::uint16_t>(v)));
  if (e.name == "iface")
    return Value(net::Filter::iface(static_cast<std::int32_t>(v)));
  throw EvalError("unknown filter atom: " + e.name, e.loc);
}

Value Interpreter::eval_struct_init(const Expr& e, Env& env) {
  auto field = [&](const std::string& f) -> const Expr* {
    for (std::size_t i = 0; i < e.field_names.size(); ++i)
      if (e.field_names[i] == f) return e.args[i].get();
    return nullptr;
  };
  if (e.name == "Poll" || e.name == "Probe") {
    TriggerSpec spec;
    if (const Expr* ival = field("ival"))
      spec.ival_seconds = need_num(eval(*ival, env), e.loc, "ival");
    else
      throw EvalError(e.name + " requires .ival", e.loc);
    if (const Expr* what = field("what"))
      spec.what = need_filter(eval(*what, env), e.loc, "what");
    return Value(std::move(spec));
  }
  if (e.name == "Rule") {
    asic::TcamRule rule;
    if (const Expr* p = field("pattern"))
      rule.pattern = need_filter(eval(*p, env), e.loc, "pattern");
    else
      throw EvalError("Rule requires .pattern", e.loc);
    if (const Expr* a = field("act")) {
      Value av = eval(*a, env);
      if (!av.is_action())
        throw EvalError("Rule.act must be an action value", e.loc);
      rule.action = av.as_action().action;
      rule.rate_limit_bps = av.as_action().rate_limit_bps;
    }
    if (const Expr* pr = field("priority"))
      rule.priority = static_cast<int>(need_int(eval(*pr, env), e.loc,
                                                "priority"));
    return Value(std::move(rule));
  }
  throw EvalError("unknown struct type: " + e.name, e.loc);
}

Value Interpreter::eval_field(const Expr& e, Env& env) {
  Value base = eval(*e.args[0], env);
  const std::string& f = e.name;
  if (base.is_resources()) return Value(base.as_resources().field(f));
  if (base.is_packet()) {
    const auto& p = base.as_packet();
    if (f == "srcIP") return Value(p.src_ip.to_string());
    if (f == "dstIP") return Value(p.dst_ip.to_string());
    if (f == "srcPort") return Value(std::int64_t{p.src_port});
    if (f == "dstPort") return Value(std::int64_t{p.dst_port});
    if (f == "size") return Value(std::int64_t{p.size_bytes});
    if (f == "proto")
      return Value(p.proto == net::Proto::kTcp   ? "tcp"
                   : p.proto == net::Proto::kUdp ? "udp"
                                                 : "icmp");
    if (f == "syn") return Value(p.flags.syn);
    if (f == "ack") return Value(p.flags.ack);
    if (f == "fin") return Value(p.flags.fin);
    if (f == "rst") return Value(p.flags.rst);
    throw EvalError("unknown packet field: " + f, e.loc);
  }
  if (base.is_trigger()) {
    const auto& t = base.as_trigger();
    if (f == "ival") return Value(t.ival_seconds);
    if (f == "what") return Value(t.what);
    throw EvalError("unknown trigger field: " + f, e.loc);
  }
  if (base.is_rule()) {
    const auto& r = base.as_rule();
    if (f == "pattern") return Value(r.pattern);
    if (f == "act") {
      ActionValue a;
      a.action = r.action;
      a.rate_limit_bps = r.rate_limit_bps;
      return Value(a);
    }
    if (f == "id") return Value(static_cast<std::int64_t>(r.id));
    throw EvalError("unknown rule field: " + f, e.loc);
  }
  throw EvalError("value of type " + base.type_name() + " has no field " + f,
                  e.loc);
}

Value Interpreter::eval_call(const Expr& e, Env& env) {
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const auto& a : e.args) args.push_back(eval(*a, env));

  bool handled = false;
  Value v = builtin(e.name, args, env, e.loc, handled);
  if (handled) return v;
  return call_function(e.name, std::move(args), env, e.loc);
}

Value Interpreter::call_function(const std::string& name,
                                 std::vector<Value> args, Env& root,
                                 SourceLoc loc) {
  const FuncDecl* f = machine_.program->function(name);
  if (!f) throw EvalError("unknown function: " + name, loc);
  if (f->params.size() != args.size())
    throw EvalError("function " + name + " expects " +
                        std::to_string(f->params.size()) + " arguments, got " +
                        std::to_string(args.size()),
                    loc);
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw EvalError("call depth exceeded in " + name, loc);
  }
  // Function scope chains onto the machine root so helpers can read
  // machine-level configuration.
  Env* root_most = &root;
  while (root_most->parent()) root_most = root_most->parent();
  Env scope(root_most);
  for (std::size_t i = 0; i < args.size(); ++i)
    scope.define(f->params[i].name, std::move(args[i]));
  ExecResult r = exec(f->body, scope);
  --call_depth_;
  return r.returned ? r.return_value : Value();
}

Value Interpreter::builtin(const std::string& name, std::vector<Value>& args,
                           Env& env, SourceLoc loc, bool& handled) {
  handled = true;
  auto arity = [&](std::size_t n) {
    if (args.size() != n)
      throw EvalError(name + " expects " + std::to_string(n) + " arguments",
                      loc);
  };
  if (name == "res") {
    arity(0);
    return Value(host(loc)->resources());
  }
  if (name == "min" || name == "max") {
    if (args.size() < 2) throw EvalError(name + " expects >= 2 args", loc);
    bool all_int = true;
    for (const auto& a : args) all_int &= a.is_int();
    if (all_int) {
      std::int64_t acc = args[0].as_int();
      for (std::size_t i = 1; i < args.size(); ++i)
        acc = name == "min" ? std::min(acc, args[i].as_int())
                            : std::max(acc, args[i].as_int());
      return Value(acc);
    }
    double acc = need_num(args[0], loc, name.c_str());
    for (std::size_t i = 1; i < args.size(); ++i) {
      double v = need_num(args[i], loc, name.c_str());
      acc = name == "min" ? std::min(acc, v) : std::max(acc, v);
    }
    return Value(acc);
  }
  if (name == "abs") {
    arity(1);
    if (args[0].is_int()) {
      std::int64_t v = args[0].as_int();
      if (v == std::numeric_limits<std::int64_t>::min())
        throw EvalError("integer overflow in 'abs'", loc);
      return Value(v < 0 ? -v : v);
    }
    return Value(std::abs(need_num(args[0], loc, "abs")));
  }
  if (name == "addTCAMRule") {
    if (args.size() == 1 && args[0].is_rule()) {
      host(loc)->add_tcam_rule(args[0].as_rule());
      return Value();
    }
    arity(2);
    asic::TcamRule rule;
    rule.pattern = need_filter(args[0], loc, "addTCAMRule");
    if (!args[1].is_action())
      throw EvalError("addTCAMRule: second argument must be an action", loc);
    rule.action = args[1].as_action().action;
    rule.rate_limit_bps = args[1].as_action().rate_limit_bps;
    host(loc)->add_tcam_rule(rule);
    return Value();
  }
  if (name == "removeTCAMRule") {
    arity(1);
    host(loc)->remove_tcam_rule(need_filter(args[0], loc, "removeTCAMRule"));
    return Value();
  }
  if (name == "getTCAMRule") {
    arity(1);
    auto r = host(loc)->get_tcam_rule(need_filter(args[0], loc, "getTCAMRule"));
    return r ? Value(*r) : Value();
  }
  if (name == "exec") {
    arity(1);
    if (!args[0].is_string())
      throw EvalError("exec expects a command string", loc);
    host(loc)->exec(args[0].as_string());
    return Value();
  }
  // --- actions --------------------------------------------------------------
  if (name == "action_drop") {
    arity(0);
    return Value(ActionValue{asic::RuleAction::kDrop, 0});
  }
  if (name == "action_rate_limit") {
    arity(1);
    return Value(
        ActionValue{asic::RuleAction::kRateLimit, need_num(args[0], loc, name.c_str())});
  }
  if (name == "action_count") {
    arity(0);
    return Value(ActionValue{asic::RuleAction::kCount, 0});
  }
  if (name == "action_mirror") {
    arity(0);
    return Value(ActionValue{asic::RuleAction::kMirror, 0});
  }
  // --- lists ----------------------------------------------------------------
  if (name == "list_new") {
    arity(0);
    return Value::empty_list();
  }
  if (name == "list_size") {
    arity(1);
    return Value(static_cast<std::int64_t>(args[0].as_list()->size()));
  }
  if (name == "is_list_empty") {
    arity(1);
    return Value(args[0].as_list()->empty());
  }
  if (name == "list_get") {
    arity(2);
    const auto& l = *args[0].as_list();
    auto i = need_int(args[1], loc, "list_get");
    if (i < 0 || static_cast<std::size_t>(i) >= l.size())
      throw EvalError("list index out of range", loc);
    return l[static_cast<std::size_t>(i)];
  }
  if (name == "list_append") {
    arity(2);
    args[0].as_list()->push_back(args[1]);
    return args[0];
  }
  if (name == "list_clear") {
    arity(1);
    args[0].as_list()->clear();
    return args[0];
  }
  if (name == "list_contains") {
    arity(2);
    for (const auto& v : *args[0].as_list())
      if (v.equals(args[1])) return Value(true);
    return Value(false);
  }
  if (name == "list_index_of") {
    arity(2);
    const auto& l = *args[0].as_list();
    for (std::size_t i = 0; i < l.size(); ++i)
      if (l[i].equals(args[1])) return Value(static_cast<std::int64_t>(i));
    return Value(std::int64_t{-1});
  }
  if (name == "list_set") {
    arity(3);
    auto& l = *args[0].as_list();
    auto i = need_int(args[1], loc, "list_set");
    if (i < 0 || static_cast<std::size_t>(i) >= l.size())
      throw EvalError("list index out of range", loc);
    l[static_cast<std::size_t>(i)] = args[2];
    return args[0];
  }
  // --- statistics snapshots ---------------------------------------------------
  if (name == "stats_size") {
    arity(1);
    return Value(static_cast<std::int64_t>(args[0].as_stats().entries->size()));
  }
  if (name == "stats_iface" || name == "stats_bytes" ||
      name == "stats_packets" || name == "stats_subject") {
    arity(2);
    const auto& entries = *args[0].as_stats().entries;
    auto i = need_int(args[1], loc, name.c_str());
    if (i < 0 || static_cast<std::size_t>(i) >= entries.size())
      throw EvalError("stats index out of range", loc);
    const StatEntry& s = entries[static_cast<std::size_t>(i)];
    if (name == "stats_iface") return Value(std::int64_t{s.iface});
    if (name == "stats_bytes")
      return Value(static_cast<std::int64_t>(s.bytes));
    if (name == "stats_packets")
      return Value(static_cast<std::int64_t>(s.packets));
    return Value(s.subject);
  }
  // --- conversions & misc -----------------------------------------------------
  // --- sketches (§VIII extension) --------------------------------------------
  if (name == "cms_new") {
    arity(2);
    // Validate via SketchSpec before construction — FARM_CHECK aborts, and
    // seed initializers are also evaluated inside the Sickle linter.
    net::SketchSpec spec;
    spec.kind = net::SketchKind::kCountMin;
    spec.width = static_cast<int>(need_int(args[0], loc, "cms_new width"));
    spec.depth = static_cast<int>(need_int(args[1], loc, "cms_new depth"));
    if (std::string err = spec.validate(); !err.empty())
      throw EvalError("cms_new: " + err, loc);
    SketchValue s;
    s.cms = std::make_shared<net::CountMinSketch>(spec.width, spec.depth);
    return Value(std::move(s));
  }
  if (name == "cms_add") {
    arity(3);
    if (!args[0].is_sketch() || !args[0].as_sketch().cms)
      throw EvalError("cms_add expects a count-min sketch", loc);
    std::string key = args[1].is_string() ? args[1].as_string()
                                          : args[1].to_string();
    args[0].as_sketch().cms->add(
        key, static_cast<std::uint64_t>(need_int(args[2], loc, "cms_add")));
    return Value();
  }
  if (name == "cms_estimate") {
    arity(2);
    if (!args[0].is_sketch() || !args[0].as_sketch().cms)
      throw EvalError("cms_estimate expects a count-min sketch", loc);
    std::string key = args[1].is_string() ? args[1].as_string()
                                          : args[1].to_string();
    return Value(
        static_cast<std::int64_t>(args[0].as_sketch().cms->estimate(key)));
  }
  if (name == "cms_clear") {
    arity(1);
    if (!args[0].is_sketch() || !args[0].as_sketch().cms)
      throw EvalError("cms_clear expects a count-min sketch", loc);
    args[0].as_sketch().cms->clear();
    return Value();
  }
  if (name == "mg_new") {
    arity(1);
    net::SketchSpec spec;
    spec.kind = net::SketchKind::kMisraGries;
    spec.capacity =
        static_cast<int>(need_int(args[0], loc, "mg_new capacity"));
    spec.shards = 1;  // seed-local summaries are unsharded
    if (std::string err = spec.validate(); !err.empty())
      throw EvalError("mg_new: " + err, loc);
    SketchValue s;
    s.mg = std::make_shared<net::MisraGries>(spec.capacity);
    return Value(std::move(s));
  }
  if (name == "mg_add") {
    arity(3);
    if (!args[0].is_sketch() || !args[0].as_sketch().mg)
      throw EvalError("mg_add expects a misra-gries summary", loc);
    std::string key = args[1].is_string() ? args[1].as_string()
                                          : args[1].to_string();
    args[0].as_sketch().mg->add(
        key, static_cast<std::uint64_t>(need_int(args[2], loc, "mg_add")));
    return Value();
  }
  if (name == "mg_estimate") {
    arity(2);
    if (!args[0].is_sketch() || !args[0].as_sketch().mg)
      throw EvalError("mg_estimate expects a misra-gries summary", loc);
    std::string key = args[1].is_string() ? args[1].as_string()
                                          : args[1].to_string();
    return Value(
        static_cast<std::int64_t>(args[0].as_sketch().mg->estimate(key)));
  }
  if (name == "mg_hitters") {
    arity(2);
    if (!args[0].is_sketch() || !args[0].as_sketch().mg)
      throw EvalError("mg_hitters expects a misra-gries summary", loc);
    auto min_count = need_int(args[1], loc, "mg_hitters");
    auto out = std::make_shared<std::vector<Value>>();
    for (const auto& [k, c] : args[0].as_sketch().mg->hitters(
             static_cast<std::uint64_t>(min_count > 0 ? min_count : 0)))
      out->push_back(Value(k));
    return Value(std::move(out));
  }
  if (name == "mg_clear") {
    arity(1);
    if (!args[0].is_sketch() || !args[0].as_sketch().mg)
      throw EvalError("mg_clear expects a misra-gries summary", loc);
    args[0].as_sketch().mg->clear();
    return Value();
  }
  if (name == "hll_new") {
    arity(1);
    net::SketchSpec spec;
    spec.kind = net::SketchKind::kHyperLogLog;
    spec.precision =
        static_cast<int>(need_int(args[0], loc, "hll_new precision"));
    if (std::string err = spec.validate(); !err.empty())
      throw EvalError("hll_new: " + err, loc);
    SketchValue s;
    s.hll = std::make_shared<net::HyperLogLog>(spec.precision);
    return Value(std::move(s));
  }
  if (name == "hll_add") {
    arity(2);
    if (!args[0].is_sketch() || !args[0].as_sketch().hll)
      throw EvalError("hll_add expects a HyperLogLog", loc);
    args[0].as_sketch().hll->add(args[1].is_string() ? args[1].as_string()
                                                     : args[1].to_string());
    return Value();
  }
  if (name == "hll_estimate") {
    arity(1);
    if (!args[0].is_sketch() || !args[0].as_sketch().hll)
      throw EvalError("hll_estimate expects a HyperLogLog", loc);
    return Value(
        static_cast<std::int64_t>(args[0].as_sketch().hll->estimate() + 0.5));
  }
  if (name == "hll_clear") {
    arity(1);
    if (!args[0].is_sketch() || !args[0].as_sketch().hll)
      throw EvalError("hll_clear expects a HyperLogLog", loc);
    args[0].as_sketch().hll->clear();
    return Value();
  }
  if (name == "is_nil") {
    arity(1);
    return Value(args[0].is_nil());
  }
  if (name == "to_long") {
    arity(1);
    if (args[0].is_string()) {
      // std::stoll throws std::invalid_argument / std::out_of_range, which
      // would escape the runtime's EvalError handler; convert here.
      try {
        return Value(
            static_cast<std::int64_t>(std::stoll(args[0].as_string())));
      } catch (const std::exception&) {
        throw EvalError("to_long: cannot parse '" + args[0].as_string() +
                            "' as an integer",
                        loc);
      }
    }
    double f = std::trunc(need_num(args[0], loc, "to_long"));
    if (!(f >= kI64DblLo && f < kI64DblHi))
      throw EvalError("integer overflow in 'to_long'", loc);
    return Value(static_cast<std::int64_t>(f));
  }
  if (name == "to_float") {
    arity(1);
    return Value(need_num(args[0], loc, "to_float"));
  }
  if (name == "to_str") {
    arity(1);
    return Value(args[0].is_string() ? args[0].as_string()
                                     : args[0].to_string());
  }
  if (name == "iface_filter") {
    arity(1);
    return Value(net::Filter::iface(
        static_cast<std::int32_t>(need_int(args[0], loc, "iface_filter"))));
  }
  if (name == "now_ms") {
    arity(0);
    return Value(host(loc)->now_ms());
  }
  if (name == "switch_id") {
    arity(0);
    return Value(host(loc)->switch_id());
  }
  if (name == "log") {
    arity(1);
    host(loc)->log(args[0].is_string() ? args[0].as_string()
                                       : args[0].to_string());
    return Value();
  }
  handled = false;
  return Value();
}

ExecResult Interpreter::exec(const std::vector<ActionPtr>& actions, Env& env) {
  for (const auto& a : actions) {
    switch (a->kind) {
      case Action::Kind::kDeclare: {
        Value v = a->expr ? eval(*a->expr, env)
                          : default_value(a->decl_type);
        env.define(a->target, std::move(v));
        break;
      }
      case Action::Kind::kAssign: {
        Value v = eval(*a->expr, env);
        if (!env.assign(a->target, std::move(v)))
          throw EvalError("assignment to undeclared variable: " + a->target,
                          a->loc);
        // Trigger variables re-arm their timers on reassignment.
        if (const VarDecl* vd = machine_.var(a->target); vd && vd->trigger)
          if (host_) host_->trigger_updated(a->target);
        break;
      }
      case Action::Kind::kIf: {
        Value c = eval(*a->expr, env);
        if (!c.is_bool())
          throw EvalError("if condition must be bool", a->loc);
        Env scope(&env);
        ExecResult r = exec(c.as_bool() ? a->body : a->else_body, scope);
        if (r.returned) return r;
        break;
      }
      case Action::Kind::kWhile: {
        std::int64_t guard = 0;
        for (;;) {
          Value c = eval(*a->expr, env);
          if (!c.is_bool())
            throw EvalError("while condition must be bool", a->loc);
          if (!c.as_bool()) break;
          Env scope(&env);
          ExecResult r = exec(a->body, scope);
          if (r.returned) return r;
          if (++guard > kMaxLoopIterations)
            throw EvalError("while loop exceeded iteration budget", a->loc);
        }
        break;
      }
      case Action::Kind::kTransit: {
        std::string target;
        if (a->expr->kind == Expr::Kind::kVarRef &&
            machine_.state(a->expr->name)) {
          target = a->expr->name;  // bare state identifier
        } else {
          Value v = eval(*a->expr, env);
          if (!v.is_string())
            throw EvalError("transit target must be a state name", a->loc);
          target = v.as_string();
        }
        if (!machine_.state(target))
          throw EvalError("transit to unknown state: " + target, a->loc);
        if (host_) host_->request_transit(target);
        break;
      }
      case Action::Kind::kSend: {
        Value payload = eval(*a->expr, env);
        SendTarget target;
        target.to_harvester = a->to_harvester;
        target.machine = a->to_machine;
        if (a->to_dst)
          target.dst = need_int(eval(*a->to_dst, env), a->loc, "send @dst");
        if (host_) host_->send(payload, target);
        break;
      }
      case Action::Kind::kReturn: {
        ExecResult r;
        r.returned = true;
        if (a->expr) r.return_value = eval(*a->expr, env);
        return r;
      }
      case Action::Kind::kExprStmt:
        eval(*a->expr, env);
        break;
    }
  }
  return {};
}

}  // namespace farm::almanac
