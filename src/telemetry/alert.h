// Scarecrow SLO alerting over Granary metrics.
//
// A rule watches every registered metric whose dot-label matches a pattern
// and evaluates one of four measures against a threshold on each tick of
// the owner's (virtual-time) evaluation clock:
//   kThreshold — the live registry aggregate (counter total / gauge level /
//                histogram observation sum);
//   kRate      — growth of the live aggregate per second, measured between
//                consecutive evaluations. Works on registry-only hot
//                metrics (Hub::count/level) that never hit the event ring;
//   kBurnRate  — exponentially-weighted moving average of kRate, the
//                classic SLO burn-rate smoother for bursty series;
//   kStaleness — seconds since the live aggregate last changed, detecting
//                sources that went silent (a crashed switch's soil stops
//                bumping poll_deliveries).
// All measures read only live aggregates — one pass over the registry per
// tick, no event-store scans — so the evaluator stays O(metrics) and safe
// to run every few virtual milliseconds.
//
// Each (rule, matching metric) pair is one alert instance with the
// lifecycle inactive → pending → firing → resolved. Every transition is
// recorded as a mark event "alert.<rule>.<state>" carrying the measured
// value, so alerts ride the existing chrome-trace/CSV/JSON exporters and
// chaos flight dumps for free, and detection latency is assertable from
// the event store.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "telemetry/hub.h"

namespace farm::telemetry {

enum class SloKind : std::uint8_t {
  kThreshold,
  kRate,
  kBurnRate,
  kStaleness,
};

enum class SloOp : std::uint8_t { kGreater, kLess };

std::string to_string(SloKind kind);

struct SloRule {
  std::string name;     // alert family, e.g. "pcie-saturated"
  std::string pattern;  // label pattern per label_matches()
  SloKind kind = SloKind::kThreshold;
  SloOp op = SloOp::kGreater;
  double threshold = 0;
  // Breach must persist this long before pending escalates to firing.
  util::Duration hold;
  // kBurnRate EWMA smoothing factor in (0, 1]; 1 degenerates to kRate.
  double alpha = 0.3;

  // One-line declarative grammar (whitespace-separated):
  //   <name> ':' <measure> '(' <pattern> ')' <op> <number>
  //          [ 'for' <duration> ] [ 'alpha' <number> ]
  // measure  := 'value' | 'rate' | 'burn' | 'staleness'
  // op       := '>' | '<'
  // duration := <number> ('ns' | 'us' | 'ms' | 's')
  // e.g. "poll-timeouts: rate(soil.*.poll_timeouts) > 2 for 100ms"
  static std::optional<SloRule> parse(std::string_view spec);
};

enum class AlertState : std::uint8_t {
  kInactive,
  kPending,
  kFiring,
  kResolved,
};

std::string to_string(AlertState state);

struct Alert {
  std::size_t rule = 0;  // index into AlertManager::rules()
  MetricId metric = kInvalidMetric;
  AlertState state = AlertState::kInactive;
  double value = 0;  // last evaluated measure
  TimePoint pending_since;
  TimePoint firing_since;
  TimePoint resolved_at;
  std::uint64_t fires = 0;  // lifetime pending→firing transitions

  // --- Evaluator state (per instance, O(1) per tick) -------------------------
  bool seen = false;       // raw aggregate sampled at least once
  double prev_raw = 0;     // aggregate at the previous evaluation
  TimePoint prev_at;       // when prev_raw was sampled
  bool ewma_primed = false;
  double ewma = 0;
  bool ever_active = false;  // kStaleness: aggregate changed at least once
  TimePoint last_active;     // kStaleness: when it last changed
};

class AlertManager {
 public:
  explicit AlertManager(Hub& hub);

  // Returns the rule index. Transition mark metrics are registered here so
  // their names exist before the first event.
  std::size_t add_rule(SloRule rule);
  // Parses the declarative form; false (and no rule added) on bad syntax.
  bool add_rule(std::string_view spec);
  const std::vector<SloRule>& rules() const { return rules_; }

  // Evaluates every rule against the hub's live aggregates at `now`.
  // Deterministic: owners drive this from a virtual-time periodic task.
  void evaluate(TimePoint now);

  const std::vector<Alert>& alerts() const { return alerts_; }
  // First alert of rule `name`, optionally narrowed to a concrete metric
  // label; nullptr when no such instance exists (yet).
  const Alert* find(std::string_view name,
                    std::string_view metric_label = {}) const;
  std::size_t firing_count() const;
  // True when any instance whose metric label matches `pattern` is firing.
  bool any_firing(std::string_view pattern) const;

  std::uint64_t evaluations() const { return evaluations_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  struct RuleMarks {
    MetricId pending = kInvalidMetric;
    MetricId firing = kInvalidMetric;
    MetricId resolved = kInvalidMetric;
    // Matching restarts from this registry index next evaluation; metrics
    // registered later are discovered incrementally.
    std::size_t scanned = 0;
  };

  // Mark emissions planned by one instance's state-machine step (at most
  // pending + firing). Steps run per-alert — in parallel for large fleets —
  // and the planned marks are applied sequentially in alert index order, so
  // the event-ring append sequence matches a sequential evaluation exactly.
  struct Step {
    std::array<std::pair<MetricId, double>, 2> marks{};
    int n = 0;
  };

  void discover(std::size_t rule_index);
  // Returns the measured value, or nullopt while the instance has no data
  // (first rate sample, never-active staleness source).
  std::optional<double> measure(const SloRule& rule, Alert& a, TimePoint now);
  // Measure + state machine for one instance; mutates only `a` (thread-safe
  // across distinct instances) and returns the marks to emit.
  Step step_alert(Alert& a, TimePoint now);

  Hub& hub_;
  std::vector<SloRule> rules_;
  std::vector<RuleMarks> marks_;
  std::vector<Alert> alerts_;
  // (rule index << 32 | metric id) → index into alerts_.
  std::unordered_map<std::uint64_t, std::size_t> index_;
  MetricId m_firing_total_ = kInvalidMetric;
  std::uint64_t evaluations_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace farm::telemetry
