file(REMOVE_RECURSE
  "libfarm_baselines.a"
)
