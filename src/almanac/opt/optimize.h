// Winnow's analysis-driven machine optimizer (DESIGN.md §15).
//
// `optimize_machine` runs the abstract interpreter over a compiled machine
// and uses the proven facts to rewrite a *clone* of it:
//
//   - pure expressions with a proven constant value fold to literals;
//   - `if` statements with a provably-constant, provably-non-throwing
//     condition splice to the taken branch;
//   - `while` loops with a provably-false condition disappear;
//   - states the analysis proved unreachable are deleted (when no surviving
//     transit still names them);
//   - enter/exit/realloc handlers left empty by the rewrites are dropped,
//     which compacts the per-state dispatch tables;
//   - registers that are never read and provably unobservable are deleted
//     together with their stores (stores whose right-hand side may have an
//     effect degrade to expression statements instead of disappearing).
//
// Every rewrite is gated on facts strong enough to preserve *bit-identical
// observable behavior*, including which EvalErrors are raised — the replay
// harness (replay.h) checks exactly that. When the rewritten machine fails
// to recompile (which would indicate a bug in the rewriter), the optimizer
// falls back to an unmodified clone and reports stats.applied = false.
#pragma once

#include <memory>

#include "almanac/compile.h"
#include "almanac/verify/absint.h"

namespace farm::almanac::opt {

struct OptimizeStats {
  int folded_consts = 0;    // expressions replaced by literals
  int pruned_ifs = 0;       // ifs spliced to the taken branch
  int deleted_loops = 0;    // whiles with provably-false conditions
  int removed_handlers = 0; // empty enter/exit/realloc handlers dropped
  int removed_states = 0;   // provably-unreachable states deleted
  int removed_vars = 0;     // dead register/local declarations deleted
  int removed_stores = 0;   // dead stores deleted or degraded to expr-stmts
  // False when the rewritten machine failed to recompile and the optimizer
  // fell back to an unmodified clone.
  bool applied = false;

  int total() const {
    return folded_consts + pruned_ifs + deleted_loops + removed_handlers +
           removed_states + removed_vars + removed_stores;
  }
};

struct OptimizeResult {
  // Owns the flattened, rewritten machine plus its reachable functions.
  std::unique_ptr<Program> program;
  // Compiled view borrowing from `program`.
  CompiledMachine machine;
  // The Winnow analysis of the *original* machine that justified the
  // rewrites (also what the replay harness checks intervals against).
  verify::absint::Analysis analysis;
  OptimizeStats stats;
};

OptimizeResult optimize_machine(const CompiledMachine& m,
                                const verify::absint::AbsintOptions& opts = {});

}  // namespace farm::almanac::opt
