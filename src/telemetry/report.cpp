#include "telemetry/report.h"

#include <cstdio>
#include <functional>
#include <map>

#include "telemetry/export.h"
#include "util/check.h"

namespace farm::telemetry {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fixed(double v, int digits = 3) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

// 10-cell health bar: [########--] 0.800
std::string bar(double score) {
  int cells = static_cast<int>(score * 10 + 0.5);
  std::string out = "[";
  for (int i = 0; i < 10; ++i) out += i < cells ? '#' : '-';
  out += "] " + fixed(score);
  return out;
}

// Totals of every registry aggregate grouped by the first label component
// ("soil", "pcie", "bus", ...) — the at-a-glance rollup for the text form.
std::map<std::string, std::pair<std::size_t, double>> component_totals(
    const Registry& reg) {
  std::map<std::string, std::pair<std::size_t, double>> out;
  for (MetricId id = 0; id < reg.size(); ++id) {
    auto& slot = out[std::string(label_component(reg.name(id), 0))];
    slot.first += 1;
    slot.second += reg.value(id);
  }
  return out;
}

}  // namespace

void write_farm_report(std::ostream& os, const ReportInputs& in) {
  FARM_CHECK(in.hub != nullptr);
  const Hub& hub = *in.hub;
  os << "=== " << in.title << " @ " << fixed(in.now.seconds()) << "s"
     << " (virtual) ===\n";
  os << "telemetry: " << (Hub::compiled_in() ? (hub.enabled() ? "on" : "muted")
                                             : "compiled out")
     << "; metrics " << hub.registry().size() << "; events "
     << hub.events().total_appended() << " recorded, " << hub.events().dropped()
     << " evicted (" << hub.events().shard_count() << " silo shard"
     << (hub.events().shard_count() == 1 ? "" : "s") << ")\n";

  if (in.health) {
    os << "\n--- fabric health ---\n";
    for (const auto& node : in.health->flatten()) {
      os << std::string(static_cast<std::size_t>(node.depth) * 2, ' ')
         << bar(node.score) << "  " << node.name << "\n";
    }
  }

  if (in.alerts) {
    os << "\n--- alerts (" << in.alerts->firing_count() << " firing) ---\n";
    bool any = false;
    for (const Alert& a : in.alerts->alerts()) {
      if (a.state == AlertState::kInactive && a.fires == 0) continue;
      any = true;
      const SloRule& rule = in.alerts->rules()[a.rule];
      os << "  " << rule.name << " [" << hub.registry().name(a.metric)
         << "] " << to_string(a.state) << " value=" << fixed(a.value)
         << " fires=" << a.fires;
      if (a.state == AlertState::kFiring)
        os << " since=" << fixed(a.firing_since.seconds()) << "s";
      if (a.state == AlertState::kResolved)
        os << " resolved=" << fixed(a.resolved_at.seconds()) << "s";
      os << "\n";
    }
    if (!any) os << "  (none ever left inactive)\n";
  }

  os << "\n--- metric totals by subsystem ---\n";
  for (const auto& [component, slot] : component_totals(hub.registry()))
    os << "  " << component << ": " << slot.first
       << " metrics, total " << num(slot.second) << "\n";

  if (in.profile) {
    os << "\n--- control-plane profile (furrow, wall-clock) ---\n";
    write_prof_report(os, *in.profile);
  }
}

void write_farm_report_json(std::ostream& os, const ReportInputs& in) {
  FARM_CHECK(in.hub != nullptr);
  const Hub& hub = *in.hub;
  const Registry& reg = hub.registry();
  os << "{\"title\":\"" << json_escape(in.title) << "\",\"time_s\":"
     << num(in.now.seconds()) << ",\"telemetry\":\""
     << (Hub::compiled_in() ? (hub.enabled() ? "on" : "muted")
                            : "compiled-out")
     << "\",\"events\":{\"appended\":" << hub.events().total_appended()
     << ",\"retained\":" << hub.events().size()
     << ",\"dropped\":" << hub.events().dropped()
     << ",\"silo_shards\":" << hub.events().shard_count() << "}";

  os << ",\"alerts\":[";
  if (in.alerts) {
    bool first = true;
    for (const Alert& a : in.alerts->alerts()) {
      const SloRule& rule = in.alerts->rules()[a.rule];
      if (!first) os << ",";
      first = false;
      os << "\n{\"rule\":\"" << json_escape(rule.name) << "\",\"metric\":\""
         << json_escape(reg.name(a.metric)) << "\",\"state\":\""
         << to_string(a.state) << "\",\"value\":" << num(a.value)
         << ",\"fires\":" << a.fires;
      if (a.fires > 0 || a.state != AlertState::kInactive)
        os << ",\"pending_since_s\":" << num(a.pending_since.seconds())
           << ",\"firing_since_s\":" << num(a.firing_since.seconds())
           << ",\"resolved_at_s\":" << num(a.resolved_at.seconds());
      os << "}";
    }
  }
  os << "]";

  os << ",\"health\":[";
  if (in.health) {
    bool first = true;
    for (const auto& node : in.health->flatten()) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"" << json_escape(node.name) << "\",\"score\":"
         << num(node.score) << ",\"depth\":" << node.depth << ",\"leaf\":"
         << (node.leaf ? "true" : "false") << "}";
    }
  }
  os << "]";

  os << ",\"metrics\":[";
  for (MetricId id = 0; id < reg.size(); ++id) {
    if (id) os << ",";
    os << "\n{\"name\":\"" << json_escape(reg.name(id)) << "\",\"kind\":\""
       << to_string(reg.kind(id)) << "\",\"value\":" << num(reg.value(id))
       << "}";
  }
  os << "]";

  if (in.profile) {
    const prof::Snapshot& snap = *in.profile;
    os << ",\"profile\":{\"total_ns\":" << snap.root.total_ns
       << ",\"stacks\":[";
    bool first = true;
    std::string path;
    std::function<void(const prof::ProfNode&)> walk =
        [&](const prof::ProfNode& node) {
          std::size_t saved = path.size();
          if (!path.empty()) path += ';';
          path += node.name;
          if (!first) os << ",";
          first = false;
          os << "\n{\"path\":\"" << json_escape(path)
             << "\",\"count\":" << node.count
             << ",\"total_ns\":" << node.total_ns
             << ",\"self_ns\":" << node.self_ns
             << ",\"max_ns\":" << node.max_ns << "}";
          for (const prof::ProfNode& c : node.children) walk(c);
          path.resize(saved);
        };
    for (const prof::ProfNode& c : snap.root.children) walk(c);
    os << "],\"counters\":[";
    first = true;
    for (const prof::ProfCounter& c : snap.counters) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"" << json_escape(c.name)
         << "\",\"value\":" << c.value << "}";
    }
    os << "]}";
  }
  os << "}\n";
}

}  // namespace farm::telemetry
