// Fig. 10: soil↔seed communication latency — shared ring buffer (seeds as
// soil threads) vs. gRPC-style IPC (seeds as processes) — as the number of
// deployed seeds grows.
//
// Paper: gRPC latency grows linearly with deployed seed count and becomes
// the bottleneck; the shared buffer stays at a marginal constant overhead
// even with 150 seeds. (This motivated FARM's default execution model.)
#include <cstdio>
#include <string>

#include "bench_json.h"

#include "farm/system.h"
#include "runtime/soil.h"

using namespace farm;
using sim::Duration;

namespace {

constexpr const char* kPollTask = R"ALM(
machine P {
  place all;
  poll s = Poll { .ival = 0.01, .what = port ANY };
  state run {
    util (res) { if (res.vCPU >= 0.001) then { return res.vCPU; } }
    when (s as st) do { }
  }
}
)ALM";

double mean_delivery_us(int seeds, bool threads) {
  sim::Engine engine;
  asic::SwitchConfig cfg;
  cfg.n_ifaces = 48;
  cfg.cpu_cores = 8;
  asic::SwitchChassis sw(engine, 0, "sw", cfg, 0);
  runtime::SoilConfig scfg;
  scfg.seeds_as_threads = threads;
  runtime::Soil soil(engine, sw, scfg);
  auto image = runtime::MachineImage::from_source(kPollTask, "P");
  for (int i = 0; i < seeds; ++i)
    soil.deploy({"t" + std::to_string(i), "P", 0}, image, {});
  engine.run_for(Duration::sec(1));
  return soil.delivery_latency().mean() * 1e6;
}

}  // namespace

int main() {
  std::printf("Fig. 10 — soil→seed event delivery latency (µs), shared "
              "buffer (threads) vs gRPC (processes)\n\n");
  std::printf("%6s %18s %14s\n", "seeds", "shared buffer(us)", "gRPC(us)");
  double shared_first = 0, shared_last = 0;
  double rpc_first = 0, rpc_last = 0;
  bench::BenchJson out("fig10_ipc_latency");
  for (int seeds : {1, 25, 50, 75, 100, 125, 150}) {
    double shared = mean_delivery_us(seeds, true);
    double rpc = mean_delivery_us(seeds, false);
    std::printf("%6d %18.1f %14.1f\n", seeds, shared, rpc);
    out.record("delivery_latency", shared, "us",
               {bench::param("seeds", seeds),
                bench::param("transport", "shared-buffer")});
    out.record("delivery_latency", rpc, "us",
               {bench::param("seeds", seeds),
                bench::param("transport", "grpc")});
    if (shared_first == 0) {
      shared_first = shared;
      rpc_first = rpc;
    }
    shared_last = shared;
    rpc_last = rpc;
  }
  // Shape: shared buffer roughly flat; gRPC grows linearly and dominates.
  bool shape = shared_last < 3 * shared_first + 5 &&
               rpc_last > 2 * rpc_first && rpc_last > 10 * shared_last;
  std::printf("\nshared buffer flat, gRPC linear in seed count: %s\n",
              shape ? "HOLDS" : "VIOLATED");
  return shape ? 0 : 1;
}
