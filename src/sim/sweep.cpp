#include "sim/sweep.h"

#include "telemetry/prof.h"
#include "util/pool.h"

namespace farm::sim {

std::map<std::string, SweepResult::Aggregate> SweepResult::aggregate() const {
  std::map<std::string, Aggregate> out;
  for (const auto& run : runs) {
    for (const auto& [key, v] : run.values) {
      auto [it, fresh] = out.try_emplace(key);
      Aggregate& a = it->second;
      if (fresh) {
        a.min = a.max = v;
      } else {
        a.min = std::min(a.min, v);
        a.max = std::max(a.max, v);
      }
      a.sum += v;
      ++a.count;
    }
  }
  return out;
}

SweepResult run_scenarios(std::size_t count, const ScenarioFn& fn,
                          const SweepOptions& options) {
  SweepResult result;
  FARM_PROF_SCOPE("sweep/run");
  util::ThreadPool pool(options.threads);
  result.runs = pool.parallel_map<ScenarioMetrics>(count, [&](std::size_t i) {
    FARM_PROF_TASK("sweep/scenario");
    Engine engine;
    return fn(i, engine);
  });
  return result;
}

}  // namespace farm::sim
