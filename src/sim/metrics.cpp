#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace farm::sim {

void Stats::record(double v) {
  samples_.push_back(v);
  sorted_ = false;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0;
  double m = mean(), acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / (samples_.size() - 1));
}

double Stats::percentile(double p) const {
  p = std::clamp(p, 0.0, 100.0);
  if (empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Exact extremes: nearest-rank rounding must not let float error at the
  // endpoints pick a neighbor of the true min/max.
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  if (rank > samples_.size()) rank = samples_.size();
  return samples_[rank - 1];
}

std::size_t Stats::count_below(double x) const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return static_cast<std::size_t>(
      std::lower_bound(samples_.begin(), samples_.end(), x) -
      samples_.begin());
}

void Stats::reset() {
  samples_.clear();
  sorted_ = true;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

}  // namespace farm::sim
