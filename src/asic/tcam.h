// Ternary CAM model.
//
// The soil divides TCAM space between packet forwarding and monitoring
// (iSTAMP-style split, §II-B b) so FARM's rule churn can never displace
// forwarding state. Rules carry priorities and hit counters; counters are
// the polling subjects seeds read over the PCIe bus.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/filter.h"
#include "net/packet.h"

namespace farm::asic {

using RuleId = std::uint64_t;
inline constexpr RuleId kInvalidRule = 0;

enum class RuleAction : std::uint8_t {
  kForward,
  kDrop,
  kRateLimit,  // cap the matched traffic to rate_limit_bps
  kMirror,     // copy matched packets to the CPU (Sonata-style streaming)
  kCount,      // pure monitoring rule: count only
};

std::string to_string(RuleAction a);

enum class TcamRegion : std::uint8_t { kForwarding, kMonitoring };

struct TcamRule {
  RuleId id = kInvalidRule;
  TcamRegion region = TcamRegion::kMonitoring;
  int priority = 0;  // higher wins
  net::Filter pattern;
  RuleAction action = RuleAction::kCount;
  double rate_limit_bps = 0;  // kRateLimit only
  std::string note;           // installer-visible tag (e.g. task name)

  // Hit counters, updated by the traffic driver.
  std::uint64_t hit_packets = 0;
  std::uint64_t hit_bytes = 0;

  // Identity comparison: a rule is its TCAM slot.
  friend bool operator==(const TcamRule& a, const TcamRule& b) {
    return a.id == b.id;
  }
};

class Tcam {
 public:
  // `capacity` total entries; `monitoring_reserved` of them are fenced off
  // for M&M rules so forwarding behaviour is never displaced.
  Tcam(int capacity, int monitoring_reserved);

  // Returns the new rule's id, or nullopt if the region is full.
  std::optional<RuleId> add_rule(TcamRule rule);
  // Removes all rules whose pattern equals `pattern` (canonical equality)
  // in the given region; returns removed count.
  int remove_rules(const net::Filter& pattern, TcamRegion region);
  bool remove_rule(RuleId id);
  // Highest-priority rule matching the header across both regions, ties
  // broken by lower id (older rule wins). Does not update counters.
  // `at_iface` is the ingress interface (-1 = unknown) so that rules with
  // interface atoms (e.g. reactions installed on a hitter port) apply only
  // to traffic on that port.
  const TcamRule* match(const net::PacketHeader& h, int at_iface = -1) const;
  TcamRule* mutable_match(const net::PacketHeader& h, int at_iface = -1);
  // All rules matching the header. Hardware keeps per-rule counters even
  // for shadowed entries (separate counter blocks); the data path uses
  // this to account every matching rule while acting on the best
  // non-count rule (count rules are transparent to forwarding).
  std::vector<TcamRule*> matching(const net::PacketHeader& h,
                                  int at_iface = -1);
  const TcamRule* find(RuleId id) const;
  const TcamRule* find(const net::Filter& pattern, TcamRegion region) const;

  // Wipes every rule in both regions (switch power failure). Rule ids keep
  // increasing across reboots so stale ids can never alias new rules.
  void clear();

  const std::vector<TcamRule>& rules() const { return rules_; }
  int used(TcamRegion region) const;
  int free_space(TcamRegion region) const;
  int capacity(TcamRegion region) const;

 private:
  int capacity_total_;
  int monitoring_reserved_;
  RuleId next_id_ = 1;
  std::vector<TcamRule> rules_;
};

}  // namespace farm::asic
