file(REMOVE_RECURSE
  "libfarm_almanac.a"
)
