file(REMOVE_RECURSE
  "CMakeFiles/farm_core.dir/chaos.cpp.o"
  "CMakeFiles/farm_core.dir/chaos.cpp.o.d"
  "CMakeFiles/farm_core.dir/seeder.cpp.o"
  "CMakeFiles/farm_core.dir/seeder.cpp.o.d"
  "CMakeFiles/farm_core.dir/system.cpp.o"
  "CMakeFiles/farm_core.dir/system.cpp.o.d"
  "CMakeFiles/farm_core.dir/usecases.cpp.o"
  "CMakeFiles/farm_core.dir/usecases.cpp.o.d"
  "libfarm_core.a"
  "libfarm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
