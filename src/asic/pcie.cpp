#include "asic/pcie.h"

#include <algorithm>

#include "util/check.h"

namespace farm::asic {

PcieBus::PcieBus(Engine& engine, double bandwidth_bps,
                 Duration per_request_overhead)
    : engine_(engine),
      bandwidth_bps_(bandwidth_bps),
      overhead_(per_request_overhead) {
  FARM_CHECK(bandwidth_bps > 0);
}

void PcieBus::request(int entries, std::function<void()> on_complete) {
  FARM_CHECK(entries >= 0);
  std::uint64_t transfer_bytes =
      static_cast<std::uint64_t>(entries) * sim::cost::kStatEntryBytes;
  Duration transfer = overhead_ + Duration::from_seconds(
                                      static_cast<double>(transfer_bytes) *
                                      8.0 / bandwidth_bps_);
  TimePoint start = std::max(engine_.now(), free_at_);
  free_at_ = start + transfer;
  busy_ += transfer;
  bytes_ += transfer_bytes;
  ++requests_;
  engine_.schedule_at(free_at_, [cb = std::move(on_complete)] {
    if (cb) cb();
  });
}

Duration PcieBus::backlog() const {
  TimePoint now = engine_.now();
  return free_at_ > now ? free_at_ - now : Duration{};
}

double PcieBus::utilization() const {
  double elapsed = engine_.now().seconds();
  if (elapsed <= 0) return 0;
  // Subtract the part of busy time that lies in the future (queued work).
  double busy = busy_.seconds() - backlog().seconds();
  return std::clamp(busy / elapsed, 0.0, 1.0);
}

}  // namespace farm::asic
