#include "asic/tcam.h"

#include <algorithm>

#include "util/check.h"

namespace farm::asic {

std::string to_string(RuleAction a) {
  switch (a) {
    case RuleAction::kForward:
      return "forward";
    case RuleAction::kDrop:
      return "drop";
    case RuleAction::kRateLimit:
      return "rate_limit";
    case RuleAction::kMirror:
      return "mirror";
    case RuleAction::kCount:
      return "count";
  }
  return "?";
}

Tcam::Tcam(int capacity, int monitoring_reserved)
    : capacity_total_(capacity), monitoring_reserved_(monitoring_reserved) {
  FARM_CHECK(capacity >= 0 && monitoring_reserved >= 0 &&
             monitoring_reserved <= capacity);
}

int Tcam::capacity(TcamRegion region) const {
  return region == TcamRegion::kMonitoring
             ? monitoring_reserved_
             : capacity_total_ - monitoring_reserved_;
}

int Tcam::used(TcamRegion region) const {
  int n = 0;
  for (const auto& r : rules_)
    if (r.region == region) ++n;
  return n;
}

int Tcam::free_space(TcamRegion region) const {
  return capacity(region) - used(region);
}

std::optional<RuleId> Tcam::add_rule(TcamRule rule) {
  if (free_space(rule.region) <= 0) return std::nullopt;
  rule.id = next_id_++;
  rule.hit_packets = rule.hit_bytes = 0;
  rules_.push_back(std::move(rule));
  return rules_.back().id;
}

int Tcam::remove_rules(const net::Filter& pattern, TcamRegion region) {
  auto key = pattern.canonical_key();
  int removed = 0;
  std::erase_if(rules_, [&](const TcamRule& r) {
    bool hit = r.region == region && r.pattern.canonical_key() == key;
    removed += hit;
    return hit;
  });
  return removed;
}

bool Tcam::remove_rule(RuleId id) {
  return std::erase_if(rules_, [&](const TcamRule& r) { return r.id == id; }) >
         0;
}

void Tcam::clear() { rules_.clear(); }

TcamRule* Tcam::mutable_match(const net::PacketHeader& h, int at_iface) {
  TcamRule* best = nullptr;
  for (auto& r : rules_) {
    if (!r.pattern.matches(h, at_iface)) continue;
    if (!best || r.priority > best->priority ||
        (r.priority == best->priority && r.id < best->id))
      best = &r;
  }
  return best;
}

const TcamRule* Tcam::match(const net::PacketHeader& h, int at_iface) const {
  return const_cast<Tcam*>(this)->mutable_match(h, at_iface);
}

std::vector<TcamRule*> Tcam::matching(const net::PacketHeader& h,
                                      int at_iface) {
  std::vector<TcamRule*> out;
  for (auto& r : rules_)
    if (r.pattern.matches(h, at_iface)) out.push_back(&r);
  return out;
}

const TcamRule* Tcam::find(RuleId id) const {
  for (const auto& r : rules_)
    if (r.id == id) return &r;
  return nullptr;
}

const TcamRule* Tcam::find(const net::Filter& pattern,
                           TcamRegion region) const {
  auto key = pattern.canonical_key();
  for (const auto& r : rules_)
    if (r.region == region && r.pattern.canonical_key() == key) return &r;
  return nullptr;
}

}  // namespace farm::asic
