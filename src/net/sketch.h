// Probabilistic sketches — the paper's §VIII future-work item ("the
// integration of sketches into FARM"), implemented as seed-side state
// primitives exposed through Almanac builtins (cms_* / hll_* / mg_*) and
// as the cell library of the DiSketch disaggregated runtime
// (src/runtime/disketch.h), which fragments one logical sketch across
// switches and folds the fragments at the harvester on epoch boundaries.
//
// CountMinSketch: count-min for per-key frequency estimation under bounded
// memory (over-estimates only; error ≤ εN with probability 1-δ for
// width=⌈e/ε⌉, depth=⌈ln 1/δ⌉). Conservative update by default; plain
// (linear) update is selectable — required for mergeable fragments, since
// only the linear form is a cell-wise monoid.
// MisraGries: deterministic heavy-hitter summary with k counters; every
// counter under-estimates its key's true count by at most the recorded
// decrement total (≤ N/(k+1)).
// HyperLogLog: cardinality estimation with 2^precision 6-bit registers
// (relative error ≈ 1.04/√m) — the natural fit for superspreader /
// entropy-style distinct counting that today costs the seeds O(n) lists.
//
// All hashing routes through util::stable_hash64 with per-row seeds from
// util::derive_seed, so two sketches built from the same hash_seed agree
// bit-for-bit on any platform — the contract the accuracy goldens and the
// fragment/merge bit-identity property rest on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/heavy.h"

namespace farm::net {

// Master seed shared by every sketch that does not ask for its own.
inline constexpr std::uint64_t kDefaultSketchSeed = 0x5EED'FA23'D15C'A7C4ull;

class CountMinSketch {
 public:
  enum class Update {
    kConservative,  // raise each row's cell only to the new minimum
    kPlain,         // add to every row's cell (linear ⇒ mergeable)
  };

  CountMinSketch(int width, int depth,
                 std::uint64_t hash_seed = kDefaultSketchSeed,
                 Update update = Update::kConservative);

  void add(std::string_view key, std::uint64_t count = 1);
  // Point query; never under-estimates the true count.
  std::uint64_t estimate(std::string_view key) const;
  void clear();
  // Cell-wise fold of another sketch with identical geometry, seed, and
  // kPlain update mode (conservative update is not linear, so merging it
  // would not equal the monolithic sketch).
  void merge(const CountMinSketch& other);

  int width() const { return width_; }
  int depth() const { return depth_; }
  std::uint64_t hash_seed() const { return hash_seed_; }
  Update update_mode() const { return update_; }
  std::size_t memory_bytes() const {
    return counters_.size() * sizeof(std::uint64_t);
  }
  std::uint64_t total_added() const { return total_; }
  const std::vector<std::uint64_t>& cells() const { return counters_; }

 private:
  std::uint64_t cell_hash(std::string_view key, int row) const;

  int width_;
  int depth_;
  std::uint64_t hash_seed_;
  Update update_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> row_seeds_;  // derive_seed(hash_seed, row)
  std::vector<std::uint64_t> counters_;   // depth × width
};

// Misra-Gries heavy-hitter summary: at most `capacity` exact-key counters;
// when a new key arrives with the table full, every counter drops by the
// table minimum and zeroed slots free up. estimate(x) under-estimates the
// true count by at most decremented(); keys with true count > decremented()
// are guaranteed present. State is held in a sorted map so serialization
// and iteration are deterministic.
//
// The algebra lives in util::MisraGriesT (src/util/heavy.h) so the Silo
// telemetry aggregates share the identical implementation; this class is
// the string-keyed adapter the Almanac builtins and DiSketch fragments use.
class MisraGries {
 public:
  explicit MisraGries(int capacity) : impl_(capacity) {}

  void add(std::string_view key, std::uint64_t count = 1) {
    impl_.add(key, count);
  }
  // Lower-bound estimate; 0 when the key is not tracked.
  std::uint64_t estimate(std::string_view key) const {
    return impl_.estimate(key);
  }
  // Tracked keys with counter >= min_count, sorted by key.
  std::vector<std::pair<std::string, std::uint64_t>> hitters(
      std::uint64_t min_count) const {
    return impl_.hitters(min_count);
  }
  void clear() { impl_.clear(); }
  // Agarwal-style fold: sum counters key-wise, then reduce back to
  // capacity by subtracting the (capacity+1)-th largest count. Preserves
  // the N/(k+1) error bound of the concatenated streams.
  void merge(const MisraGries& other) { impl_.merge(other.impl_); }

  // Rebuilds a summary from serialized state (DiSketch wire format).
  static MisraGries restore(int capacity, std::uint64_t total,
                            std::uint64_t decremented,
                            std::map<std::string, std::uint64_t> counters);

  int capacity() const { return impl_.capacity(); }
  std::uint64_t total_added() const { return impl_.total_added(); }
  // Total count subtracted from every surviving counter so far — the
  // summary's worst-case under-estimation.
  std::uint64_t decremented() const { return impl_.decremented(); }
  std::size_t size() const { return impl_.size(); }
  const std::map<std::string, std::uint64_t>& counters() const {
    return impl_.counters();
  }
  std::size_t memory_bytes() const;

 private:
  util::MisraGriesT<std::string> impl_;
};

class HyperLogLog {
 public:
  // precision p in [4, 16]: m = 2^p registers.
  explicit HyperLogLog(int precision,
                       std::uint64_t hash_seed = kDefaultSketchSeed);

  void add(std::string_view key);
  // Cardinality estimate with small-range (linear counting) correction.
  double estimate() const;
  void clear();
  // Register-wise max of another sketch with the same precision and seed.
  void merge(const HyperLogLog& other);

  int precision() const { return precision_; }
  std::uint64_t hash_seed() const { return hash_seed_; }
  std::size_t memory_bytes() const { return registers_.size(); }
  const std::vector<std::uint8_t>& registers() const { return registers_; }

  // The raw-estimate + linear-counting formula over any register array —
  // shared with the DiSketch fragment runtime, which stores registers
  // itself so it can slice ownership across fragments.
  static double estimate_registers(const std::uint8_t* regs, std::size_t m);

 private:
  int precision_;
  std::uint64_t hash_seed_;
  std::vector<std::uint8_t> registers_;
};

// --- Declared sketch specs ---------------------------------------------------
// The static shape of one sketch declaration: what an Almanac `sketch`
// variable's initializer (cms_new / mg_new / hll_new) pins down, what
// Sickle's resource pass costs against the per-switch budget, and what the
// DiSketch runtime fragments. Lives here (not in runtime/) because both
// farm_almanac and farm_runtime consume it and almanac must not depend on
// the runtime.
enum class SketchKind { kCountMin, kMisraGries, kHyperLogLog };

std::string to_string(SketchKind k);

struct SketchSpec {
  SketchKind kind = SketchKind::kCountMin;
  int width = 2048;   // count-min
  int depth = 4;      // count-min
  int capacity = 64;  // misra-gries: total counters across all shards
  int shards = 16;    // misra-gries: key-space sub-tables (fragment unit)
  int precision = 12; // hyperloglog
  std::uint64_t hash_seed = kDefaultSketchSeed;

  // Counter cells the sketch pins in switch memory — the unit the SK/RS
  // budget costing and the fragment planner slice. CMS: width·depth; MG:
  // one cell per counter; HLL: one per register.
  std::size_t cells() const;
  std::size_t state_bytes() const;
  // Empty when the parameters are valid; otherwise what is wrong.
  std::string validate() const;
  std::string to_string() const;

  friend bool operator==(const SketchSpec&, const SketchSpec&) = default;
};

}  // namespace farm::net
