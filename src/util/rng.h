// Deterministic pseudo-random generation for workloads and experiments.
//
// We implement xoshiro256** seeded via SplitMix64 rather than relying on
// std::mt19937 so that experiment streams are stable across standard-library
// implementations (distribution results of <random> are not portable).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace farm::util {

// --- Stable hashing ---------------------------------------------------------
// All sketch hashing routes through these two functions so estimates are
// bit-stable across platforms and standard-library versions (std::hash is
// not portable, and accuracy goldens diff exact estimates). stable_hash64
// is FNV-1a over the bytes finalized with the SplitMix64 mixer; derive_seed
// expands one master seed into independent per-row/per-shard stream seeds.
std::uint64_t stable_hash64(std::string_view bytes, std::uint64_t seed);
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniform over the full 64-bit range.
  std::uint64_t next_u64();
  // Uniform over [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);
  // Uniform integer in the closed interval [lo, hi].
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);
  // Uniform double in [0, 1).
  double next_double();
  // Uniform double in [lo, hi).
  double next_double(double lo, double hi);
  // Bernoulli trial with probability p of returning true.
  bool next_bool(double p);
  // Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);
  // Zipf-distributed rank in [1, n] with skew parameter s (> 0). Used to
  // generate realistic flow-size skew for heavy-hitter workloads.
  std::uint64_t next_zipf(std::uint64_t n, double s);
  // Samples an index proportionally to non-negative weights.
  std::size_t next_weighted(const std::vector<double>& weights);
  // Forks an independent stream; deterministic given this stream's state.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace farm::util
