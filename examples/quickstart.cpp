// Quickstart: deploy the heavy-hitter task on a simulated leaf-spine
// fabric, drive an elephant flow through it, and watch FARM detect and
// mitigate it on-switch within milliseconds.
//
//   $ ./quickstart
#include <cstdio>

#include "farm/harvesters.h"
#include "farm/system.h"
#include "farm/usecases.h"

using namespace farm;

int main() {
  // 1. A 2×4 leaf-spine fabric with 4 hosts per rack (all simulated:
  //    ASIC + TCAM + PCIe bus + management CPU per switch).
  core::FarmSystemConfig config;
  config.topology = {.spines = 2, .leaves = 4, .hosts_per_leaf = 4};
  core::FarmSystem farm(config);

  // 2. A harvester — the task's centralized coordinator. For HH it adapts
  //    the global threshold; here we mostly read its report log.
  core::HhHarvester harvester(farm.engine(), "hh");
  farm.bus().attach_harvester("hh", harvester);

  // 3. Install the heavy-hitter task from its Almanac source. `place all`
  //    puts one seed on every switch; externals bind the detection
  //    threshold and the local reaction (rate-limit hitters to 1 Mbps).
  const core::UseCase& hh = core::use_case("Heavy hitter (HH)");
  farm.install_task({
      .name = "hh",
      .source = hh.source,
      .machines = hh.machines,
      .externals =
          {{"threshold", almanac::Value(std::int64_t{200'000})},
           {"hitterAction",
            almanac::Value(almanac::ActionValue{asic::RuleAction::kRateLimit,
                                                1e6})}},
  });
  std::printf("deployed %zu seeds across %zu switches\n",
              farm.seeder().seeds_of_task("hh").size(),
              farm.topology().switches().size());

  // 4. Traffic: one 800 Mbps elephant between two racks.
  net::FlowSchedule schedule;
  net::FlowSpec elephant;
  elephant.key = {
      *farm.topology().node(farm.fabric().hosts_by_leaf[0][0]).address,
      *farm.topology().node(farm.fabric().hosts_by_leaf[2][0]).address,
      40000, 443, net::Proto::kTcp};
  elephant.rate_bps = 800e6;
  elephant.packet_bytes = 1400;
  schedule.add_forever(sim::TimePoint::origin(), elephant);
  farm.load_traffic(std::move(schedule));

  // 5. Run one simulated second.
  farm.run_for(sim::Duration::sec(1));

  // 6. What happened?
  std::printf("harvester received %zu hitter report(s)\n",
              harvester.reports.size());
  if (!harvester.reports.empty())
    std::printf("first report at t=%.3f ms (flow started at t=0)\n",
                harvester.report_times.front().seconds() * 1000);
  int reactions = 0;
  for (auto n : farm.topology().switches())
    for (const auto& rule : farm.chassis(n).tcam().rules())
      if (rule.action == asic::RuleAction::kRateLimit) {
        std::printf("switch %-7s rate-limits %s\n",
                    farm.topology().node(n).name.c_str(),
                    rule.pattern.to_string().c_str());
        ++reactions;
      }
  std::printf("%d local reaction(s) installed — no controller round-trip "
              "involved\n",
              reactions);
  std::printf("control-plane bytes to central components: %llu\n",
              static_cast<unsigned long long>(farm.bus().upstream().bytes));
  return harvester.reports.empty() ? 1 : 0;
}
