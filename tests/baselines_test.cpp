// Tests for the collection-centric baselines: sFlow and Sonata/Newton.
#include <gtest/gtest.h>

#include <memory>

#include "asic/driver.h"
#include "baselines/sflow.h"
#include "baselines/sonata.h"

namespace farm::baselines {
namespace {

using net::Ipv4;
using sim::Duration;
using sim::Engine;
using sim::TimePoint;

struct Rig {
  Engine engine;
  net::SpineLeaf sl =
      net::build_spine_leaf({.spines = 2, .leaves = 4, .hosts_per_leaf = 2});
  std::vector<std::unique_ptr<asic::SwitchChassis>> chassis;
  std::vector<asic::SwitchChassis*> by_node;

  Rig() {
    by_node.assign(sl.topo.node_count(), nullptr);
    for (auto n : sl.topo.switches()) {
      asic::SwitchConfig cfg;
      cfg.n_ifaces =
          std::max<int>(8, static_cast<int>(sl.topo.neighbors(n).size()));
      chassis.push_back(std::make_unique<asic::SwitchChassis>(
          engine, n, sl.topo.node(n).name, cfg, n));
      by_node[n] = chassis.back().get();
    }
  }

  net::FlowSchedule elephant(double rate_bps) {
    net::FlowSchedule sched;
    net::FlowSpec f;
    f.key = {*sl.topo.node(sl.hosts_by_leaf[0][0]).address,
             *sl.topo.node(sl.hosts_by_leaf[1][0]).address, 4000, 443,
             net::Proto::kTcp};
    f.rate_bps = rate_bps;
    f.packet_bytes = 1400;
    sched.add_forever(TimePoint::origin(), f);
    return sched;
  }
};

TEST(SflowTest, AgentsExportPerPortRecords) {
  Rig rig;
  SflowCollector collector(rig.engine);
  std::vector<std::unique_ptr<SflowAgent>> agents;
  for (auto n : rig.sl.topo.switches()) {
    agents.push_back(std::make_unique<SflowAgent>(
        rig.engine, *rig.by_node[n], collector, SflowConfig{}));
    agents.back()->start();
  }
  rig.engine.run_for(Duration::sec(1));
  // 6 switches × 8 ports × 10 probes/sec ≈ 480 records.
  EXPECT_GT(collector.records_processed(), 400u);
  EXPECT_GT(collector.ingress().bytes, 400u * 100);
}

TEST(SflowTest, CollectorLoadGrowsLinearlyWithPorts) {
  auto run = [](int ports) {
    Engine engine;
    asic::SwitchConfig cfg;
    cfg.n_ifaces = ports;
    asic::SwitchChassis sw(engine, 0, "sw", cfg, 0);
    SflowCollector collector(engine);
    SflowAgent agent(engine, sw, collector,
                     SflowConfig{.probe_period = Duration::ms(10)});
    agent.start();
    engine.run_for(Duration::sec(1));
    return collector.ingress().bytes;
  };
  auto small = run(16);
  auto large = run(64);
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small), 4.0,
              0.8);
}

TEST(SflowTest, DetectsHeavyHitterAfterProbePeriod) {
  Rig rig;
  SflowCollector collector(rig.engine);
  // 100 ms probes; threshold 1 MB per period; 800 Mbps flow = 10 MB/period.
  collector.set_hh_threshold(1'000'000);
  std::vector<std::unique_ptr<SflowAgent>> agents;
  for (auto n : rig.sl.topo.switches()) {
    agents.push_back(std::make_unique<SflowAgent>(
        rig.engine, *rig.by_node[n], collector,
        SflowConfig{.probe_period = Duration::ms(100)}));
    agents.back()->start();
  }
  asic::TrafficDriver driver(rig.engine, rig.sl.topo, rig.by_node,
                             rig.elephant(800e6), Duration::ms(1));
  driver.start();
  rig.engine.run_for(Duration::sec(1));
  ASSERT_FALSE(collector.detections().empty());
  // Needs two samples of the counter: detection lands after ≥ ~2 probe
  // periods but well under a second.
  double at = collector.detections()[0].at.seconds();
  EXPECT_GT(at, 0.1);
  EXPECT_LT(at, 0.5);
}

TEST(SonataTest, QueryReducesAndProcessorDetects) {
  Rig rig;
  SonataProcessor processor(rig.engine, SonataConfig{});
  processor.set_hh_threshold(10'000'000);  // 10 MB per window
  processor.start();
  std::vector<std::unique_ptr<SonataQuery>> queries;
  for (auto n : rig.sl.topo.switches()) {
    queries.push_back(std::make_unique<SonataQuery>(
        rig.engine, *rig.by_node[n], processor, net::Filter{},
        SonataConfig{}));
    queries.back()->start();
  }
  asic::TrafficDriver driver(rig.engine, rig.sl.topo, rig.by_node,
                             rig.elephant(800e6), Duration::ms(1));
  driver.start();
  rig.engine.run_for(Duration::sec(6));
  ASSERT_FALSE(processor.detections().empty());
  // Window (1 s) + micro-batch (2 s) + processing: seconds, not millis.
  EXPECT_GT(processor.detections()[0].at.seconds(), 1.0);
  EXPECT_GT(processor.tuples_processed(), 0u);
}

TEST(SonataTest, AggregationFactorShrinksExportVolume) {
  auto run = [](double aggregation) {
    Rig rig;
    SonataConfig cfg;
    cfg.aggregation_factor = aggregation;
    SonataProcessor processor(rig.engine, cfg);
    processor.start();
    SonataQuery query(rig.engine, *rig.by_node[rig.sl.leaf_switches[0]],
                      processor, net::Filter{}, cfg);
    query.start();
    asic::TrafficDriver driver(rig.engine, rig.sl.topo, rig.by_node,
                               rig.elephant(400e6), Duration::ms(1));
    driver.start();
    rig.engine.run_for(Duration::sec(5));
    return query.tuples_exported();
  };
  auto strong = run(0.75);
  auto weak = run(0.0);
  EXPECT_GT(weak, strong * 3);
}

TEST(NewtonTest, DynamicInstallAndRemove) {
  Rig rig;
  SonataProcessor processor(rig.engine, SonataConfig{});
  processor.start();
  NewtonQueryManager newton(rig.engine, processor);
  auto* sw = rig.by_node[rig.sl.leaf_switches[0]];
  int q1 = newton.install(*sw, net::Filter::l4_port(443));
  int q2 = newton.install(*sw, net::Filter::proto(net::Proto::kUdp));
  EXPECT_EQ(newton.active_queries(), 2u);
  // Mirror rules present on the switch.
  int mirrors = 0;
  for (const auto& r : sw->tcam().rules())
    if (r.action == asic::RuleAction::kMirror) ++mirrors;
  EXPECT_EQ(mirrors, 2);
  newton.uninstall(q1);
  EXPECT_EQ(newton.active_queries(), 1u);
  mirrors = 0;
  for (const auto& r : sw->tcam().rules())
    if (r.action == asic::RuleAction::kMirror) ++mirrors;
  EXPECT_EQ(mirrors, 1);
  newton.uninstall(q2);
  rig.engine.run_for(Duration::sec(1));  // no dangling callbacks
}

}  // namespace
}  // namespace farm::baselines
