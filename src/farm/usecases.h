// The 16 Table I monitoring & attack-detection use cases, written in
// Almanac. Each use case bundles its program source, the machine(s) to
// instantiate, and sensible default externals; per-use-case harvesters live
// in harvesters.h.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "almanac/value.h"

namespace farm::core {

struct UseCase {
  std::string name;           // Table I row
  std::string source;         // Almanac program
  std::vector<std::string> machines;
  std::unordered_map<std::string, almanac::Value> default_externals;
  // Lines of Almanac code (non-blank, non-comment) — the Table I "Seed"
  // column equivalent; computed from `source`.
  int seed_loc = 0;
};

// All use cases (17 rows: hierarchical HH appears twice — standalone and
// inherited — exactly as in Table I).
const std::vector<UseCase>& all_use_cases();

// Extension use cases beyond Table I — the paper's §VIII future-work item
// of integrating sketches: bounded-memory variants of the distinct-count
// tasks built on the cms_*/hll_* builtins.
const std::vector<UseCase>& extension_use_cases();

// Lookup by Table I name; aborts on unknown name.
const UseCase& use_case(const std::string& name);

// Counts non-blank, non-comment lines — used for the Table I numbers.
int count_loc(const std::string& source);

}  // namespace farm::core
