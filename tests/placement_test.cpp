// Tests for the placement optimizer: MILP encoding, Algorithm 1 heuristic,
// validation of (C1)-(C4), migration overhead, and aggregation benefits.
#include <gtest/gtest.h>

#include "placement/generator.h"
#include "placement/heuristic.h"
#include "placement/milp_placement.h"
#include "placement/switch_lp.h"

namespace farm::placement {
namespace {

using almanac::kPcie;
using almanac::kRam;
using almanac::kTcam;
using almanac::kVCpu;
using almanac::Poly;

SwitchModel mk_switch(net::NodeId n, double cpu = 4, double ram = 8192,
                      double tcam = 1024, double pcie = 8) {
  SwitchModel sw;
  sw.node = n;
  sw.capacity = ResourcesValue{cpu, ram, tcam, pcie};
  return sw;
}

// A seed needing ≥1 vCPU & ≥100 RAM, utility min(vCPU, PCIe) — exactly the
// paper's HH observe state.
SeedModel hh_seed(const std::string& id, const std::string& task,
                  std::vector<net::NodeId> candidates) {
  SeedModel s;
  s.id = id;
  s.task = task;
  s.candidates = std::move(candidates);
  UtilityVariant v;
  Poly c1 = Poly::var(kVCpu);
  c1.c0 = -1;
  Poly c2 = Poly::var(kRam);
  c2.c0 = -100;
  v.constraints = {c1, c2};
  v.util_min_terms = {Poly::var(kVCpu), Poly::var(kPcie)};
  s.variants.push_back(v);
  PollModel p;
  p.subject = "iface ANY&";
  p.inv_ival = Poly::var(kPcie, 0.1);  // ival = 10/PCIe
  s.polls.push_back(p);
  return s;
}

TEST(SwitchLpTest, MinimalAllocationSatisfiesConstraints) {
  auto s = hh_seed("s", "t", {0});
  auto alloc = minimal_allocation(s.variants[0], {8, 8192, 1024, 8});
  ASSERT_TRUE(alloc);
  EXPECT_NEAR(alloc->vCPU, 1, 1e-6);
  EXPECT_NEAR(alloc->RAM, 100, 1e-6);
  EXPECT_TRUE(s.variants[0].feasible(*alloc));
}

TEST(SwitchLpTest, MinimalAllocationInfeasibleWhenCapacityTooSmall) {
  auto s = hh_seed("s", "t", {0});
  EXPECT_FALSE(minimal_allocation(s.variants[0], {0.5, 8192, 1024, 8}));
}

TEST(SwitchLpTest, RedistributionMaximizesMinTermUtility) {
  auto sw = mk_switch(0);
  auto s = hh_seed("s", "t", {0});
  auto lp = redistribute_on_switch(sw, {{&s, 0}}, {});
  ASSERT_TRUE(lp);
  // Utility = min(vCPU, PCIe); optimum allocates up to min(cap) on both:
  // vCPU cap 4, PCIe cap 8 but polling demand consumes PCIe… utility 4
  // requires PCIe ≥ 4 and pollres = 0.1·PCIe·α ≤ 8 holds. Expect 4.
  EXPECT_NEAR(lp->utility, 4, 1e-5);
}

TEST(SwitchLpTest, PollAggregationSharesCapacity) {
  // Two seeds with the same subject vs different subjects: same-subject
  // pair can both poll fast (shared pollres), different subjects halve it.
  auto sw = mk_switch(0, /*cpu=*/16, 8192, 1024, /*pcie=*/4);
  auto a = hh_seed("a", "t", {0});
  auto b = hh_seed("b", "t", {0});
  auto shared = redistribute_on_switch(sw, {{&a, 0}, {&b, 0}}, {});
  ASSERT_TRUE(shared);
  auto c = hh_seed("c", "t", {0});
  c.polls[0].subject = "flow:c";
  auto split = redistribute_on_switch(sw, {{&a, 0}, {&c, 0}}, {});
  ASSERT_TRUE(split);
  EXPECT_GT(shared->utility, split->utility - 1e-6);
}

TEST(HeuristicTest, PlacesSingleSeedOnBestSwitch) {
  PlacementProblem p;
  p.switches = {mk_switch(0, 2, 8192, 1024, 8), mk_switch(1, 8, 8192, 1024, 8)};
  p.seeds = {hh_seed("s", "t", {0, 1})};
  auto r = solve_heuristic(p);
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_TRUE(validate_placement(p, r).empty());
  // Redistribution should push utility to the larger switch's level
  // eventually (migration pass moves it if greedy picked the small one).
  EXPECT_GE(r.total_utility, 2.0 - 1e-6);
}

TEST(HeuristicTest, RespectsTaskAtomicity) {
  // Task with two seeds, but only one can ever be placed: whole task must
  // be dropped (C1).
  PlacementProblem p;
  p.switches = {mk_switch(0, 1.5, 8192, 1024, 8)};  // fits one HH seed only
  p.seeds = {hh_seed("a", "t", {0}), hh_seed("b", "t", {0})};
  auto r = solve_heuristic(p);
  EXPECT_TRUE(r.placements.empty());
  EXPECT_TRUE(validate_placement(p, r).empty());
}

TEST(HeuristicTest, PrefersCurrentPlacementWhenEqual) {
  PlacementProblem p;
  p.switches = {mk_switch(0), mk_switch(1)};
  p.seeds = {hh_seed("s", "t", {0, 1})};
  p.current_placement["s"] = 1;
  p.current_alloc["s"] = ResourcesValue{1, 100, 0, 1};
  auto r = solve_heuristic(p);
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_EQ(r.placements[0].node, 1u);  // no unnecessary migration
}

TEST(HeuristicTest, MigratesWhenBenefitExceedsStatusQuo) {
  // Seed currently on a tiny switch; a big switch is available.
  PlacementProblem p;
  p.switches = {mk_switch(0, 1.2, 8192, 1024, 2), mk_switch(1, 8, 8192, 1024, 8)};
  p.seeds = {hh_seed("s", "t", {0, 1})};
  p.current_placement["s"] = 0;
  p.current_alloc["s"] = ResourcesValue{1, 100, 0, 1};
  auto r = solve_heuristic(p);
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_EQ(r.placements[0].node, 1u);
  EXPECT_TRUE(validate_placement(p, r).empty());
}

TEST(HeuristicTest, MigrationResidueRespectsSourceCapacity) {
  // Two seeds currently on switch 0 (capacity 2.2 vCPU, allocs 1+1).
  // Both want to move to the bigger switch 1, but the residue of a mover
  // stays charged at 0 — the validator must accept the result.
  PlacementProblem p;
  p.switches = {mk_switch(0, 2.2, 8192, 1024, 8), mk_switch(1, 16, 32768, 1024, 8)};
  p.seeds = {hh_seed("a", "ta", {0, 1}), hh_seed("b", "tb", {0, 1})};
  p.current_placement["a"] = 0;
  p.current_placement["b"] = 0;
  p.current_alloc["a"] = ResourcesValue{1, 100, 0, 1};
  p.current_alloc["b"] = ResourcesValue{1, 100, 0, 1};
  auto r = solve_heuristic(p);
  EXPECT_EQ(r.placements.size(), 2u);
  EXPECT_TRUE(validate_placement(p, r).empty()) << [&] {
    std::string all;
    for (const auto& e : validate_placement(p, r)) all += e + "; ";
    return all;
  }();
}

TEST(MilpPlacementTest, SingleSeedOptimal) {
  PlacementProblem p;
  p.switches = {mk_switch(0, 2, 8192, 1024, 8), mk_switch(1, 8, 8192, 1024, 8)};
  p.seeds = {hh_seed("s", "t", {0, 1})};
  auto r = solve_milp_placement(p, {.timeout_seconds = 30});
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_EQ(r.placements[0].node, 1u);  // bigger switch: utility 8 vs 2
  EXPECT_NEAR(r.total_utility, 8, 1e-4);
  EXPECT_TRUE(validate_placement(p, r).empty());
}

TEST(MilpPlacementTest, TaskAtomicityEnforced) {
  PlacementProblem p;
  p.switches = {mk_switch(0, 1.5, 8192, 1024, 8)};
  p.seeds = {hh_seed("a", "t", {0}), hh_seed("b", "t", {0})};
  auto r = solve_milp_placement(p, {.timeout_seconds = 30});
  EXPECT_TRUE(r.placements.empty());
}

TEST(MilpPlacementTest, PicksHigherValueTaskUnderContention) {
  // One slot (vCPU 2): task A has one seed worth up to 2; task B has two
  // seeds (needs 2 slots) worth 1 each. Optimal: A alone.
  PlacementProblem p;
  p.switches = {mk_switch(0, 2, 8192, 1024, 8)};
  auto a = hh_seed("a", "A", {0});
  auto b1 = hh_seed("b1", "B", {0});
  auto b2 = hh_seed("b2", "B", {0});
  p.seeds = {a, b1, b2};
  auto r = solve_milp_placement(p, {.timeout_seconds = 30});
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_EQ(r.placements[0].seed, "a");
  EXPECT_TRUE(validate_placement(p, r).empty());
}

TEST(MilpPlacementTest, HeuristicMatchesMilpOnSmallInstances) {
  // Property: on small random instances the heuristic achieves ≥ 85% of
  // the MILP optimum (the paper reports near-parity with Gurobi-10min).
  for (std::uint64_t trial = 1; trial <= 5; ++trial) {
    GeneratorSpec spec;
    spec.n_switches = 4;
    spec.n_tasks = 3;
    spec.seeds_per_task = 2;
    spec.candidates_per_seed = 2;
    spec.seed = trial;
    auto p = generate_problem(spec);
    auto milp = solve_milp_placement(p, {.timeout_seconds = 20});
    auto heur = solve_heuristic(p);
    EXPECT_TRUE(validate_placement(p, milp).empty()) << "trial " << trial;
    EXPECT_TRUE(validate_placement(p, heur).empty()) << "trial " << trial;
    if (milp.total_utility > 0)
      EXPECT_GE(heur.total_utility, 0.85 * milp.total_utility)
          << "trial " << trial;
    // And the exact solver is never beaten (sanity of the encoding).
    EXPECT_LE(heur.total_utility, milp.total_utility + 1e-4)
        << "trial " << trial;
  }
}

TEST(MilpPlacementTest, TimeoutFallsBackToFirstFit) {
  GeneratorSpec spec;
  spec.n_switches = 30;
  spec.n_tasks = 8;
  spec.seeds_per_task = 30;
  spec.seed = 9;
  auto p = generate_problem(spec);
  auto r = solve_milp_placement(p, {.timeout_seconds = 0.05});
  EXPECT_TRUE(r.timed_out);
  // The fallback still produces a valid (if mediocre) placement.
  EXPECT_TRUE(validate_placement(p, r).empty());
  EXPECT_GT(r.placements.size(), 0u);
}

TEST(GeneratorTest, ProducesValidatableProblems) {
  GeneratorSpec spec;
  spec.n_switches = 10;
  spec.n_tasks = 4;
  spec.seeds_per_task = 10;
  auto p = generate_problem(spec);
  EXPECT_EQ(p.seeds.size(), 40u);
  EXPECT_EQ(p.switches.size(), 10u);
  for (const auto& s : p.seeds) {
    EXPECT_FALSE(s.candidates.empty());
    EXPECT_FALSE(s.variants.empty());
  }
  auto r = solve_heuristic(p);
  EXPECT_TRUE(validate_placement(p, r).empty());
  EXPECT_GT(r.total_utility, 0);
}

TEST(HeuristicTest, ScalesToThousandsOfSeeds) {
  GeneratorSpec spec;
  spec.n_switches = 200;
  spec.n_tasks = 10;
  spec.seeds_per_task = 200;  // 2000 seeds
  auto p = generate_problem(spec);
  auto r = solve_heuristic(p);
  EXPECT_TRUE(validate_placement(p, r).empty());
  // Capacity + task atomicity bound how much fits; most of the high-value
  // tasks must land.
  EXPECT_GE(r.placements.size(), 800u);
  EXPECT_LT(r.solve_seconds, 30.0);
}

TEST(ValidateTest, DetectsOverCapacity) {
  PlacementProblem p;
  p.switches = {mk_switch(0, 1, 8192, 1024, 8)};
  p.seeds = {hh_seed("a", "t", {0})};
  PlacementResult r;
  PlacementEntry e;
  e.seed = "a";
  e.node = 0;
  e.variant = 0;
  e.alloc = ResourcesValue{5, 100, 0, 1};  // vCPU 5 > cap 1
  r.placements.push_back(e);
  EXPECT_FALSE(validate_placement(p, r).empty());
}

TEST(ValidateTest, DetectsConstraintViolation) {
  PlacementProblem p;
  p.switches = {mk_switch(0)};
  p.seeds = {hh_seed("a", "t", {0})};
  PlacementResult r;
  PlacementEntry e;
  e.seed = "a";
  e.node = 0;
  e.variant = 0;
  e.alloc = ResourcesValue{0.5, 100, 0, 1};  // violates vCPU >= 1
  r.placements.push_back(e);
  EXPECT_FALSE(validate_placement(p, r).empty());
}

TEST(ValidateTest, DetectsPartialTask) {
  PlacementProblem p;
  p.switches = {mk_switch(0)};
  p.seeds = {hh_seed("a", "t", {0}), hh_seed("b", "t", {0})};
  PlacementResult r;
  PlacementEntry e;
  e.seed = "a";
  e.node = 0;
  e.variant = 0;
  e.alloc = ResourcesValue{1, 100, 0, 1};
  r.placements.push_back(e);
  EXPECT_FALSE(validate_placement(p, r).empty());
}

TEST(HeuristicTest, InteractingMigrationsSkipMoveWhoseBenefitTurnsNegative) {
  // Two seeds on small switches, one big switch both covet. Evaluated
  // against the pre-migration state each move is worth +1.5; once the
  // first is applied, the big switch is taken and the second move's
  // *recomputed* benefit is -2. The apply loop must re-price each move
  // against the evolving state and skip it — applying on the stale score
  // would drop total utility from 5.5 to 3.5.
  PlacementProblem p;
  p.switches = {mk_switch(0, /*cpu=*/2), mk_switch(1, /*cpu=*/2),
                mk_switch(2, /*cpu=*/3.5)};
  p.seeds = {hh_seed("s1", "t1", {0, 2}), hh_seed("s2", "t2", {1, 2})};
  p.current_placement["s1"] = 0;
  p.current_placement["s2"] = 1;
  p.current_alloc["s1"] = ResourcesValue{0.1, 10, 0, 0.1};
  p.current_alloc["s2"] = ResourcesValue{0.1, 10, 0, 0.1};

  auto r = solve_heuristic(p);
  ASSERT_EQ(r.placements.size(), 2u);
  EXPECT_TRUE(validate_placement(p, r).empty());
  // Exactly one seed migrates to the big switch; the other must stay put.
  EXPECT_NEAR(r.total_utility, 5.5, 1e-5);
  int on_big = 0;
  for (const auto& e2 : r.placements) on_big += e2.node == 2;
  EXPECT_EQ(on_big, 1);

  // Sanity: the migration pass is what earns the 1.5 — without it both
  // seeds stay on their 2-vCPU switches.
  HeuristicOptions no_migr;
  no_migr.enable_migration_pass = false;
  auto base = solve_heuristic(p, no_migr);
  EXPECT_NEAR(base.total_utility, 4.0, 1e-5);
}

}  // namespace
}  // namespace farm::placement
