// Packet headers and flow keys.
//
// The simulator works at flow/statistics granularity (seeds poll counters;
// sFlow samples packets), but sampled packets carry real headers so that
// payload/flag-sensitive use cases (SYN flood, port scan, DNS reflection,
// Slowloris) exercise the same predicate logic they would on hardware.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/ip.h"

namespace farm::net {

enum class Proto : std::uint8_t { kTcp = 6, kUdp = 17, kIcmp = 1 };

// TCP flag bits (subset used by the monitoring use cases).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  friend constexpr bool operator==(TcpFlags, TcpFlags) = default;
};

struct PacketHeader {
  Ipv4 src_ip;
  Ipv4 dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Proto proto = Proto::kTcp;
  TcpFlags flags;
  std::uint32_t size_bytes = 0;

  friend constexpr bool operator==(const PacketHeader&,
                                   const PacketHeader&) = default;
  std::string to_string() const;
};

// Canonical 5-tuple identifying a flow.
struct FlowKey {
  Ipv4 src_ip;
  Ipv4 dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Proto proto = Proto::kTcp;

  friend constexpr auto operator<=>(const FlowKey&, const FlowKey&) = default;
  static FlowKey of(const PacketHeader& h) {
    return {h.src_ip, h.dst_ip, h.src_port, h.dst_port, h.proto};
  }
  std::string to_string() const;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    // FNV-1a over the tuple fields; quality is plenty for hash maps.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.src_ip.value());
    mix(k.dst_ip.value());
    mix((std::uint64_t(k.src_port) << 24) | (std::uint64_t(k.dst_port) << 8) |
        std::uint64_t(k.proto));
    return static_cast<std::size_t>(h);
  }
};

inline std::string PacketHeader::to_string() const {
  return src_ip.to_string() + ":" + std::to_string(src_port) + "->" +
         dst_ip.to_string() + ":" + std::to_string(dst_port);
}

inline std::string FlowKey::to_string() const {
  return src_ip.to_string() + ":" + std::to_string(src_port) + "->" +
         dst_ip.to_string() + ":" + std::to_string(dst_port) + "/" +
         std::to_string(static_cast<int>(proto));
}

}  // namespace farm::net
