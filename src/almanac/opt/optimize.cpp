#include "almanac/opt/optimize.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "almanac/opt/clone.h"
#include "almanac/verify/passes.h"

namespace farm::almanac::opt {

namespace {

using verify::absint::AbsVal;
using verify::absint::Analysis;
using verify::absint::Interval;
using verify::absint::expr_is_pure;
using verify::reachable_functions;
using verify::walk_actions;
using verify::walk_expr;

// Strictly inside the int64 range: magnitudes below this provably do not
// overflow the checked integer arithmetic of the interpreter.
constexpr double kSafeInt = 9.2e18;

double mag(const Interval& iv) {
  return std::max(std::fabs(iv.lo), std::fabs(iv.hi));
}

// --- rewriting --------------------------------------------------------------

struct Rewriter {
  const CompiledMachine& src;
  const Analysis& an;
  // clone -> original node (facts are keyed on originals).
  std::unordered_map<const Expr*, const Expr*> orig_expr;
  std::unordered_map<const Action*, const Action*> orig_action;
  // Registers/locals proven dead (never read, unobservable, no ctor effect).
  std::set<std::string> deletable;
  OptimizeStats stats;

  const AbsVal* fact(const Expr& clone) const {
    auto o = orig_expr.find(&clone);
    if (o == orig_expr.end()) return nullptr;
    auto f = an.expr_facts.find(o->second);
    return f == an.expr_facts.end() ? nullptr : &f->second;
  }

  // Proof that evaluating the (cloned) expression cannot raise an
  // EvalError: every rewrite that *removes* an evaluation is gated on this,
  // because the interpreter's arithmetic is checked and which errors a
  // handler raises is observable behavior.
  bool no_throw(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return true;
      case Expr::Kind::kVarRef:
        // Machine registers are always defined; scope proofs for locals are
        // not worth the complexity here.
        return src.var(e.name) != nullptr;
      case Expr::Kind::kNot: {
        if (e.args.empty() || !e.args[0]) return false;
        const AbsVal* a = fact(*e.args[0]);
        return a && a->is_const_bool() && no_throw(*e.args[0]);
      }
      case Expr::Kind::kBinary: {
        if (e.args.size() < 2 || !e.args[0] || !e.args[1]) return false;
        const Expr& le = *e.args[0];
        const Expr& re = *e.args[1];
        if (!no_throw(le) || !no_throw(re)) return false;
        const AbsVal* a = fact(le);
        const AbsVal* b = fact(re);
        if (!a || !b) return false;
        switch (e.op) {
          case BinOp::kAnd:
          case BinOp::kOr:
            return a->is_const_bool() && b->is_const_bool();
          case BinOp::kEq:
          case BinOp::kNe:
            return true;  // structural equality never throws
          case BinOp::kLe:
          case BinOp::kGe:
          case BinOp::kLt:
          case BinOp::kGt:
            return (a->is_num() && b->is_num()) ||
                   (a->is_const_string() && b->is_const_string());
          case BinOp::kAdd:
            // String concatenation stringifies any other operand.
            if (a->is_const_string() || b->is_const_string()) return true;
            if (!a->is_num() || !b->is_num()) return false;
            if (a->is_int() && b->is_int())
              return mag(a->interval()) + mag(b->interval()) < kSafeInt;
            return true;
          case BinOp::kSub:
            if (!a->is_num() || !b->is_num()) return false;
            if (a->is_int() && b->is_int())
              return mag(a->interval()) + mag(b->interval()) < kSafeInt;
            return true;
          case BinOp::kMul:
            if (!a->is_num() || !b->is_num()) return false;
            if (a->is_int() && b->is_int())
              return mag(a->interval()) * mag(b->interval()) < kSafeInt;
            return true;
          case BinOp::kDiv: {
            if (!a->is_num() || !b->is_num()) return false;
            const Interval& d = b->interval();
            if (!(d.lo > 0 || d.hi < 0)) return false;  // divisor may be 0
            if (a->is_int() && b->is_int() && d.hi < 0)
              return a->interval().lo > -kSafeInt;  // INT64_MIN / -1
            return true;
          }
        }
        return false;
      }
      case Expr::Kind::kCall: {
        if (e.name == "min" || e.name == "max") {
          if (e.args.size() < 2) return false;
          for (const auto& arg : e.args) {
            if (!arg || !no_throw(*arg)) return false;
            const AbsVal* f = fact(*arg);
            if (!f || !f->is_num()) return false;
          }
          return true;
        }
        if (e.name == "abs" && e.args.size() == 1 && e.args[0]) {
          const AbsVal* f = fact(*e.args[0]);
          return f && f->is_num() && no_throw(*e.args[0]) &&
                 (!f->is_int() || f->interval().lo > -kSafeInt);
        }
        return false;
      }
      default:
        return false;
    }
  }

  bool const_cond(const Expr& cond, bool* out) const {
    const AbsVal* f = fact(cond);
    if (!f || !f->is_const_bool()) return false;
    auto o = orig_expr.find(&cond);
    if (o == orig_expr.end() || !expr_is_pure(*o->second)) return false;
    if (!no_throw(cond)) return false;
    *out = f->const_bool();
    return true;
  }

  // Top-down maximal constant folding: a pure, provably-non-throwing
  // expression with a singleton abstract value becomes a literal.
  void fold(ExprPtr& e) {
    if (!e || e->kind == Expr::Kind::kLiteral) return;
    const AbsVal* f = fact(*e);
    Value v;
    if (f && f->singleton(&v)) {
      auto o = orig_expr.find(e.get());
      if (o != orig_expr.end() && expr_is_pure(*o->second) && no_throw(*e)) {
        auto lit = std::make_unique<Expr>();
        lit->kind = Expr::Kind::kLiteral;
        lit->loc = e->loc;
        lit->literal = std::move(v);
        e = std::move(lit);
        ++stats.folded_consts;
        return;
      }
    }
    for (auto& a : e->args) fold(a);
  }

  // A fully-rewritten rhs whose evaluation can be removed outright.
  bool droppable(const Expr& e) const {
    if (e.kind == Expr::Kind::kLiteral) return true;
    return expr_is_pure(e) && no_throw(e);
  }

  std::vector<ActionPtr> rewrite(std::vector<ActionPtr> body) {
    std::vector<ActionPtr> out;
    out.reserve(body.size());
    for (auto& ap : body) {
      if (!ap) continue;
      Action& a = *ap;
      switch (a.kind) {
        case Action::Kind::kIf: {
          bool cv = false;
          if (a.expr && const_cond(*a.expr, &cv)) {
            auto taken = rewrite(std::move(cv ? a.body : a.else_body));
            bool top_decl = false;
            for (const auto& t : taken)
              if (t->kind == Action::Kind::kDeclare) top_decl = true;
            ++stats.pruned_ifs;
            if (!top_decl) {
              // Splice: the branch runs in the surrounding scope, which is
              // only safe when it declares no locals of its own.
              for (auto& t : taken) out.push_back(std::move(t));
            } else {
              auto lit = std::make_unique<Expr>();
              lit->kind = Expr::Kind::kLiteral;
              lit->loc = a.expr->loc;
              lit->literal = Value(cv);
              a.expr = std::move(lit);
              a.body = cv ? std::move(taken) : std::vector<ActionPtr>{};
              a.else_body = cv ? std::vector<ActionPtr>{} : std::move(taken);
              out.push_back(std::move(ap));
            }
            break;
          }
          if (a.expr) fold(a.expr);
          a.body = rewrite(std::move(a.body));
          a.else_body = rewrite(std::move(a.else_body));
          out.push_back(std::move(ap));
          break;
        }
        case Action::Kind::kWhile: {
          bool cv = false;
          if (a.expr && const_cond(*a.expr, &cv) && !cv) {
            ++stats.deleted_loops;
            break;  // loop provably never entered
          }
          if (a.expr) fold(a.expr);
          a.body = rewrite(std::move(a.body));
          out.push_back(std::move(ap));
          break;
        }
        case Action::Kind::kDeclare: {
          if (deletable.count(a.target)) {
            ++stats.removed_vars;
            if (a.expr) {
              fold(a.expr);
              if (!droppable(*a.expr)) {
                // Keep the initializer's effects (and its errors).
                a.kind = Action::Kind::kExprStmt;
                a.target.clear();
                out.push_back(std::move(ap));
              }
            }
            break;
          }
          if (a.expr) fold(a.expr);
          out.push_back(std::move(ap));
          break;
        }
        case Action::Kind::kAssign: {
          if (deletable.count(a.target)) {
            ++stats.removed_stores;
            fold(a.expr);
            if (!droppable(*a.expr)) {
              a.kind = Action::Kind::kExprStmt;
              a.target.clear();
              out.push_back(std::move(ap));
            }
            break;
          }
          fold(a.expr);
          out.push_back(std::move(ap));
          break;
        }
        case Action::Kind::kTransit:
          // Bare state identifiers are dispatched by name, not evaluated.
          if (a.expr && !(a.expr->kind == Expr::Kind::kVarRef &&
                          src.state(a.expr->name)))
            fold(a.expr);
          out.push_back(std::move(ap));
          break;
        case Action::Kind::kSend:
          fold(a.expr);
          fold(a.to_dst);
          out.push_back(std::move(ap));
          break;
        case Action::Kind::kReturn:
        case Action::Kind::kExprStmt:
          fold(a.expr);
          out.push_back(std::move(ap));
          break;
      }
    }
    return out;
  }
};

// Names referenced outside handler/function bodies (variable initializers,
// state locals, placement directives, util bodies, recv @dst filters): the
// observability scan does not cover those contexts, so any register they
// mention must survive.
std::set<std::string> pinned_names(const CompiledMachine& m) {
  std::set<std::string> pinned;
  auto pin = [&](const Expr& e) {
    walk_expr(e, [&](const Expr& x) {
      if (x.kind == Expr::Kind::kVarRef) pinned.insert(x.name);
    });
  };
  for (const auto* v : m.vars)
    if (v->init) pin(*v->init);
  for (const auto& s : m.states) {
    for (const auto* l : s.locals)
      if (l->init) pin(*l->init);
    if (s.util)
      walk_actions(s.util->body, [&](const Action& a) {
        if (a.expr) walk_expr(*a.expr, [&](const Expr& x) {
          if (x.kind == Expr::Kind::kVarRef) pinned.insert(x.name);
        });
      });
    for (const auto* ev : s.events)
      if (ev->from_dst) pin(*ev->from_dst);
  }
  for (const auto* p : m.places) {
    for (const auto& e : p->switch_ids)
      if (e) pin(*e);
    if (p->path_filter) pin(*p->path_filter);
    if (p->range_value) pin(*p->range_value);
  }
  return pinned;
}

std::set<std::string> dead_names(const CompiledMachine& m, const Analysis& an,
                                 const std::set<std::string>& pinned) {
  std::set<std::string> dead;
  auto candidate = [&](const std::string& name) {
    if (an.read_vars.count(name) || an.observable_vars.count(name)) return false;
    if (pinned.count(name)) return false;
    if (const VarDecl* mv = m.var(name); mv && (mv->external || mv->trigger))
      return false;
    return true;
  };
  for (const auto* v : m.vars) {
    if (v->external || v->trigger) continue;
    if (!candidate(v->name)) continue;
    // Constructor-time initializers stay unless trivially effect-free.
    if (v->init && v->init->kind != Expr::Kind::kLiteral) continue;
    dead.insert(v->name);
  }
  // Block-local declares: same conditions, but their initializer can
  // degrade to an expression statement so any initializer is acceptable.
  std::unordered_set<const EventDecl*> seen;
  auto scan = [&](const std::vector<ActionPtr>& actions) {
    walk_actions(actions, [&](const Action& a) {
      if (a.kind == Action::Kind::kDeclare && candidate(a.target))
        dead.insert(a.target);
    });
  };
  for (const auto& s : m.states)
    for (const auto* ev : s.events)
      if (seen.insert(ev).second) scan(ev->actions);
  for (const auto& f : m.program->functions) scan(f.body);
  return dead;
}

// Program functions the flattened machine must carry: those reachable from
// any handler plus anything called from initializers or placement exprs.
std::unordered_set<std::string> needed_functions(const CompiledMachine& m) {
  std::unordered_set<std::string> needed;
  std::unordered_set<const EventDecl*> seen;
  for (const auto& s : m.states)
    for (const auto* ev : s.events)
      if (seen.insert(ev).second) {
        auto r = reachable_functions(*m.program, ev->actions);
        needed.insert(r.begin(), r.end());
      }
  auto add_calls = [&](const Expr& e) {
    walk_expr(e, [&](const Expr& x) {
      if (x.kind != Expr::Kind::kCall) return;
      const FuncDecl* f = m.program->function(x.name);
      if (!f || needed.count(x.name)) return;
      needed.insert(x.name);
      auto r = reachable_functions(*m.program, f->body);
      needed.insert(r.begin(), r.end());
    });
  };
  for (const auto* v : m.vars)
    if (v->init) add_calls(*v->init);
  for (const auto& s : m.states)
    for (const auto* l : s.locals)
      if (l->init) add_calls(*l->init);
  for (const auto* p : m.places) {
    for (const auto& e : p->switch_ids)
      if (e) add_calls(*e);
    if (p->path_filter) add_calls(*p->path_filter);
    if (p->range_value) add_calls(*p->range_value);
  }
  return needed;
}

// Machine-level EventDecls of the source machine's inheritance chain; a
// handler shared by several compiled states must be emitted once at
// machine level or the flattened machine's dispatch (and TCAM weight)
// would duplicate it.
std::unordered_set<const EventDecl*> machine_level_events(
    const CompiledMachine& m) {
  std::unordered_set<const EventDecl*> set;
  const MachineDecl* md = m.program->machine(m.name);
  while (md) {
    for (const auto& ev : md->machine_events) set.insert(&ev);
    if (md->extends.empty()) break;
    md = m.program->machine(md->extends);
  }
  return set;
}

struct Assembled {
  std::unique_ptr<Program> program;
  CloneMap map;
};

Assembled assemble(const CompiledMachine& src,
                   const std::set<std::string>& drop_vars) {
  Assembled out;
  out.program = std::make_unique<Program>();

  auto mlevel = machine_level_events(src);

  MachineDecl md;
  if (const MachineDecl* d = src.program->machine(src.name)) md.loc = d->loc;
  md.name = src.name;

  for (const auto* p : src.places)
    md.places.push_back(clone_place(*p, &out.map));
  for (const auto* v : src.vars) {
    if (drop_vars.count(v->name)) continue;
    md.vars.push_back(clone_var(*v, &out.map));
  }

  // Shared (machine-level) handlers, in first-seen dispatch order.
  std::unordered_set<const EventDecl*> emitted;
  for (const auto& s : src.states)
    for (const auto* ev : s.events)
      if (mlevel.count(ev) && emitted.insert(ev).second)
        md.machine_events.push_back(clone_event(*ev, &out.map));

  // States, initial first so the recompiled machine keeps its entry point.
  std::vector<const CompiledState*> order;
  for (const auto& s : src.states)
    if (s.name == src.initial_state) order.push_back(&s);
  for (const auto& s : src.states)
    if (s.name != src.initial_state) order.push_back(&s);
  for (const auto* s : order) {
    StateDecl sd;
    if (s->decl) sd.loc = s->decl->loc;
    sd.name = s->name;
    for (const auto* l : s->locals) {
      if (drop_vars.count(l->name)) continue;
      sd.locals.push_back(clone_var(*l, &out.map));
    }
    if (s->util) sd.util = clone_util(*s->util, &out.map);
    for (const auto* ev : s->events)
      if (!mlevel.count(ev)) sd.events.push_back(clone_event(*ev, &out.map));
    md.states.push_back(std::move(sd));
  }
  out.program->machines.push_back(std::move(md));

  auto needed = needed_functions(src);
  for (const auto& f : src.program->functions)
    if (needed.count(f.name))
      out.program->functions.push_back(clone_function(f, &out.map));
  return out;
}

}  // namespace

OptimizeResult optimize_machine(const CompiledMachine& src,
                                const verify::absint::AbsintOptions& opts) {
  OptimizeResult res;
  res.analysis = verify::absint::analyze_machine(src, opts);

  auto pinned = pinned_names(src);
  std::set<std::string> drop_vars;
  if (res.analysis.converged()) drop_vars = dead_names(src, res.analysis, pinned);

  Assembled asm_ = assemble(src, drop_vars);
  MachineDecl& md = asm_.program->machines.front();

  if (res.analysis.converged()) {
    Rewriter rw{src, res.analysis, {}, {}, drop_vars, {}};
    for (const auto& [orig, clone] : asm_.map.exprs) rw.orig_expr[clone] = orig;
    for (const auto& [orig, clone] : asm_.map.actions)
      rw.orig_action[clone] = orig;

    for (auto& ev : md.machine_events) ev.actions = rw.rewrite(std::move(ev.actions));
    for (auto& st : md.states)
      for (auto& ev : st.events) ev.actions = rw.rewrite(std::move(ev.actions));
    for (auto& f : asm_.program->functions) f.body = rw.rewrite(std::move(f.body));

    // Drop handlers the rewrites emptied. Message handlers consume their
    // message and var-trigger handlers feed the HD checks, so only the
    // side-effect-free kinds go; a state-level empty handler that overrides
    // a machine-level one must stay or the override would vanish with it.
    auto prunable = [](const EventDecl& ev) {
      return ev.actions.empty() &&
             (ev.kind == EventDecl::TriggerKind::kEnter ||
              ev.kind == EventDecl::TriggerKind::kExit ||
              ev.kind == EventDecl::TriggerKind::kRealloc);
    };
    rw.stats.removed_handlers += static_cast<int>(
        std::erase_if(md.machine_events, prunable));
    for (auto& st : md.states)
      rw.stats.removed_handlers +=
          static_cast<int>(std::erase_if(st.events, [&](const EventDecl& ev) {
            if (!prunable(ev)) return false;
            for (const auto& mev : md.machine_events)
              if (mev.kind == ev.kind) return false;  // would unhide override
            return true;
          }));

    // Delete provably-unreachable states — but only those no surviving
    // transit still names, and none at all if any dynamic transit remains.
    bool dynamic_transit = false;
    std::set<std::string> keep;
    keep.insert(src.initial_state);
    for (const auto& s : res.analysis.reachable_states) keep.insert(s);
    auto scan_transits = [&](const std::vector<ActionPtr>& actions,
                             std::set<std::string>& referenced) {
      walk_actions(actions, [&](const Action& a) {
        if (a.kind != Action::Kind::kTransit || !a.expr) return;
        const Expr& e = *a.expr;
        if (e.kind == Expr::Kind::kVarRef && src.state(e.name))
          referenced.insert(e.name);
        else if (e.kind == Expr::Kind::kLiteral && e.literal.is_string())
          referenced.insert(e.literal.as_string());
        else
          dynamic_transit = true;
      });
    };
    // Grow the keep set until stable: a kept state's body may name another
    // candidate even when the analysis proved the transit never fires.
    std::set<std::string> referenced;
    for (const auto& ev : md.machine_events) scan_transits(ev.actions, referenced);
    for (const auto& f : asm_.program->functions) scan_transits(f.body, referenced);
    for (bool changed = true; changed;) {
      changed = false;
      for (const auto& st : md.states) {
        if (!keep.count(st.name)) continue;
        std::set<std::string> local = referenced;
        for (const auto& ev : st.events) scan_transits(ev.actions, local);
        for (const auto& name : local)
          if (!keep.count(name) && src.state(name)) {
            keep.insert(name);
            changed = true;
          }
      }
    }
    if (!dynamic_transit)
      rw.stats.removed_states += static_cast<int>(std::erase_if(
          md.states,
          [&](const StateDecl& st) { return !keep.count(st.name); }));
    rw.stats.removed_vars += static_cast<int>(
        std::count_if(src.vars.begin(), src.vars.end(), [&](const VarDecl* v) {
          return drop_vars.count(v->name) != 0;
        }));
    res.stats = rw.stats;
  }

  verify::DiagnosticSink sink;
  auto compiled = compile_machine_collect(*asm_.program, src.name, sink);
  if (compiled && !sink.has_errors()) {
    res.stats.applied = true;
    res.program = std::move(asm_.program);
    res.machine = std::move(*compiled);
    return res;
  }

  // A rewrite produced an uncompilable machine — a rewriter bug. Fall back
  // to the unmodified flattened clone so callers still get a usable result.
  Assembled plain = assemble(src, {});
  res.stats = OptimizeStats{};
  res.program = std::move(plain.program);
  res.machine = compile_machine(*res.program, src.name);
  return res;
}

}  // namespace farm::almanac::opt
