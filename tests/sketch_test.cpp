// Tests for the sketch extension (§VIII future work): count-min and
// HyperLogLog primitives, their Almanac builtins, and the sketch-based
// use-case variants' accuracy/memory trade-off.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "almanac/compile.h"
#include "almanac/interp.h"
#include "almanac/parser.h"
#include "net/sketch.h"
#include "util/rng.h"

namespace farm::net {
namespace {

TEST(CountMinTest, ExactForDistinctKeysUnderCapacity) {
  CountMinSketch cms(512, 4);
  for (int i = 0; i < 50; ++i)
    cms.add("key" + std::to_string(i), static_cast<std::uint64_t>(i + 1));
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(cms.estimate("key" + std::to_string(i)),
              static_cast<std::uint64_t>(i + 1));
}

TEST(CountMinTest, NeverUnderestimates) {
  util::Rng rng(5);
  CountMinSketch cms(64, 4);  // deliberately small — collisions guaranteed
  std::unordered_map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    std::string key = "k" + std::to_string(rng.next_zipf(300, 1.1));
    std::uint64_t c = static_cast<std::uint64_t>(rng.next_int(1, 5));
    cms.add(key, c);
    truth[key] += c;
  }
  for (const auto& [key, count] : truth)
    EXPECT_GE(cms.estimate(key), count) << key;
}

TEST(CountMinTest, HeavyKeysAccurateUnderZipf) {
  // The heavy keys of a skewed stream must be estimated within a few
  // percent even with heavy collision pressure — the HH use case's need.
  util::Rng rng(6);
  CountMinSketch cms(1024, 4);
  std::unordered_map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 100'000; ++i) {
    std::string key = "k" + std::to_string(rng.next_zipf(5000, 1.2));
    cms.add(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    if (count < 1000) continue;  // only the heavy keys
    double err = static_cast<double>(cms.estimate(key) - count) /
                 static_cast<double>(count);
    EXPECT_LT(err, 0.05) << key << " truth=" << count;
  }
}

TEST(CountMinTest, ClearResets) {
  CountMinSketch cms(64, 2);
  cms.add("a", 100);
  cms.clear();
  EXPECT_EQ(cms.estimate("a"), 0u);
  EXPECT_EQ(cms.total_added(), 0u);
}

TEST(HyperLogLogTest, SmallCardinalitiesNearExact) {
  HyperLogLog hll(12);
  for (int i = 0; i < 100; ++i) hll.add("item" + std::to_string(i));
  EXPECT_NEAR(hll.estimate(), 100, 5);
}

TEST(HyperLogLogTest, LargeCardinalitiesWithinExpectedError) {
  HyperLogLog hll(12);  // σ ≈ 1.04/√4096 ≈ 1.6%
  const int n = 200'000;
  for (int i = 0; i < n; ++i) hll.add("item" + std::to_string(i));
  EXPECT_NEAR(hll.estimate(), n, n * 0.05);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(10);
  for (int round = 0; round < 50; ++round)
    for (int i = 0; i < 40; ++i) hll.add("dup" + std::to_string(i));
  EXPECT_NEAR(hll.estimate(), 40, 5);
}

TEST(HyperLogLogTest, MemoryIsConstant) {
  HyperLogLog hll(10);
  auto before = hll.memory_bytes();
  for (int i = 0; i < 100'000; ++i) hll.add("x" + std::to_string(i));
  EXPECT_EQ(hll.memory_bytes(), before);
  EXPECT_EQ(before, 1024u);  // 2^10 registers
}

// --- Almanac builtin integration ----------------------------------------------

TEST(SketchBuiltinTest, CmsRoundTripThroughAlmanac) {
  auto program = almanac::parse_program(R"(
    machine M {
      sketch counts = cms_new(256, 4);
      long est = 0;
      state s {
        when (enter) do {
          long i = 0;
          while (i < 100) { cms_add(counts, "hot", 1); i = i + 1; }
          cms_add(counts, "cold", 2);
          est = cms_estimate(counts, "hot");
        }
      }
    }
  )");
  auto cm = almanac::compile_machine(program, "M");
  almanac::Interpreter interp(cm, nullptr);
  almanac::Env env;
  for (const auto* v : cm.vars)
    env.define(v->name, v->init ? interp.eval(*v->init, env)
                                : almanac::Interpreter::default_value(v->type));
  const auto* s = cm.state("s");
  almanac::Env scope(&env);
  interp.exec(s->events[0]->actions, scope);
  EXPECT_EQ(env.find("est")->as_int(), 100);
}

TEST(SketchBuiltinTest, HllDistinctCountThroughAlmanac) {
  auto program = almanac::parse_program(R"(
    machine M {
      sketch distinct = hll_new(12);
      long est = 0;
      state s {
        when (enter) do {
          long i = 0;
          while (i < 500) {
            hll_add(distinct, "src" + to_str(to_long(i / 2)));
            i = i + 1;
          }
          est = hll_estimate(distinct);
        }
      }
    }
  )");
  auto cm = almanac::compile_machine(program, "M");
  almanac::Interpreter interp(cm, nullptr);
  almanac::Env env;
  for (const auto* v : cm.vars)
    env.define(v->name, v->init ? interp.eval(*v->init, env)
                                : almanac::Interpreter::default_value(v->type));
  const auto* s = cm.state("s");
  almanac::Env scope(&env);
  interp.exec(s->events[0]->actions, scope);
  // 500 adds over 250 distinct keys.
  EXPECT_NEAR(static_cast<double>(env.find("est")->as_int()), 250, 20);
}

// --- Misra-Gries -------------------------------------------------------------

TEST(MisraGriesTest, ExactUnderCapacity) {
  MisraGries mg(16);
  for (int i = 0; i < 10; ++i)
    mg.add("k" + std::to_string(i), static_cast<std::uint64_t>(i + 1));
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(mg.estimate("k" + std::to_string(i)),
              static_cast<std::uint64_t>(i + 1));
  EXPECT_EQ(mg.decremented(), 0u);
}

TEST(MisraGriesTest, HeavyHittersSurviveEviction) {
  // 1 heavy key among many light ones: any key with true count >
  // N/(capacity+1) must be tracked when the stream ends.
  MisraGries mg(8);
  for (int i = 0; i < 500; ++i) {
    mg.add("heavy");
    mg.add("light" + std::to_string(i));
  }
  EXPECT_LE(mg.size(), 8u);
  EXPECT_GT(mg.estimate("heavy") + mg.decremented(), 400u);
  auto hh = mg.hitters(1);
  bool found = false;
  for (const auto& [k, _] : hh) found |= k == "heavy";
  EXPECT_TRUE(found);
}

TEST(MisraGriesTest, EstimateIsLowerBoundWithinDecrement) {
  util::Rng rng(99);
  MisraGries mg(32);
  std::unordered_map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    std::string key = "f" + std::to_string(rng.next_zipf(500, 1.2));
    mg.add(key);
    ++truth[key];
  }
  EXPECT_LE(mg.decremented(), 20000u / 33 + 1);
  for (const auto& [key, est] : mg.counters()) {
    EXPECT_LE(est, truth[key]);
    EXPECT_GE(est + mg.decremented(), truth[key]);
  }
}

TEST(MisraGriesTest, RestoreRoundTrip) {
  MisraGries mg(8);
  for (int i = 0; i < 100; ++i) mg.add("k" + std::to_string(i % 12));
  MisraGries back = MisraGries::restore(mg.capacity(), mg.total_added(),
                                        mg.decremented(), mg.counters());
  EXPECT_EQ(back.counters(), mg.counters());
  EXPECT_EQ(back.total_added(), mg.total_added());
  EXPECT_EQ(back.decremented(), mg.decremented());
}

TEST(SketchBuiltinTest, MgHeavyHittersThroughAlmanac) {
  auto program = almanac::parse_program(R"(
    machine M {
      sketch hot = mg_new(8);
      long est = 0;
      list hh;
      state s {
        when (enter) do {
          long i = 0;
          while (i < 50) {
            mg_add(hot, "elephant", 10);
            mg_add(hot, "mouse" + to_str(i), 1);
            i = i + 1;
          }
          est = mg_estimate(hot, "elephant");
          hh = mg_hitters(hot, 100);
        }
      }
    }
  )");
  auto cm = almanac::compile_machine(program, "M");
  almanac::Interpreter interp(cm, nullptr);
  almanac::Env env;
  for (const auto* v : cm.vars)
    env.define(v->name, v->init ? interp.eval(*v->init, env)
                                : almanac::Interpreter::default_value(v->type));
  const auto* s = cm.state("s");
  almanac::Env scope(&env);
  interp.exec(s->events[0]->actions, scope);
  // The elephant (true count 500 of 550) dominates every eviction round.
  EXPECT_GT(env.find("est")->as_int(), 400);
  ASSERT_EQ(env.find("hh")->as_list()->size(), 1u);
  EXPECT_EQ((*env.find("hh")->as_list())[0].as_string(), "elephant");
}

TEST(SketchBuiltinTest, InvalidParamsThrowInsteadOfAborting) {
  // FARM_CHECK aborts; the builtins must reject bad geometry with an
  // EvalError so the Sickle linter's host-less evaluation survives.
  auto run = [](const std::string& init) {
    auto program = almanac::parse_program(
        "machine M { sketch x = " + init + "; state s { } }");
    auto cm = almanac::compile_machine(program, "M");
    almanac::Interpreter interp(cm, nullptr);
    almanac::Env env;
    interp.eval(*cm.vars[0]->init, env);
  };
  EXPECT_THROW(run("cms_new(0, 4)"), almanac::EvalError);
  EXPECT_THROW(run("cms_new(128, 99)"), almanac::EvalError);
  EXPECT_THROW(run("mg_new(0)"), almanac::EvalError);
  EXPECT_THROW(run("hll_new(3)"), almanac::EvalError);
  EXPECT_THROW(run("hll_new(17)"), almanac::EvalError);
  EXPECT_NO_THROW(run("cms_new(128, 4)"));
  EXPECT_NO_THROW(run("mg_new(16)"));
  EXPECT_NO_THROW(run("hll_new(12)"));
}

TEST(SketchBuiltinTest, TypeErrorsRaiseCleanly) {
  auto program = almanac::parse_program(R"(
    machine M {
      sketch h = hll_new(10);
      state s { when (enter) do { cms_add(h, "x", 1); } }
    }
  )");
  auto cm = almanac::compile_machine(program, "M");
  almanac::Interpreter interp(cm, nullptr);
  almanac::Env env;
  for (const auto* v : cm.vars)
    env.define(v->name, v->init ? interp.eval(*v->init, env)
                                : almanac::Interpreter::default_value(v->type));
  almanac::Env scope(&env);
  EXPECT_THROW(interp.exec(cm.state("s")->events[0]->actions, scope),
               almanac::EvalError);
}

}  // namespace
}  // namespace farm::net
