#include "asic/pcie.h"

#include <algorithm>

#include "util/check.h"

namespace farm::asic {

PcieBus::PcieBus(Engine& engine, double bandwidth_bps,
                 Duration per_request_overhead, std::uint64_t loss_seed)
    : engine_(engine),
      bandwidth_bps_(bandwidth_bps),
      overhead_(per_request_overhead),
      loss_rng_(loss_seed) {
  FARM_CHECK(bandwidth_bps > 0);
}

void PcieBus::set_loss_rate(double p) {
  FARM_CHECK(p >= 0 && p <= 1);
  loss_rate_ = p;
}

void PcieBus::request(int entries, std::function<void()> on_complete) {
  FARM_CHECK(entries >= 0);
  if (!online_) {
    ++dropped_;
    return;
  }
  std::uint64_t transfer_bytes =
      static_cast<std::uint64_t>(entries) * sim::cost::kStatEntryBytes;
  Duration transfer = overhead_ + Duration::from_seconds(
                                      static_cast<double>(transfer_bytes) *
                                      8.0 / bandwidth_bps_);
  TimePoint start = std::max(engine_.now(), free_at_);
  free_at_ = start + transfer;
  busy_ += transfer;
  bytes_ += transfer_bytes;
  ++requests_;
  if (loss_rate_ > 0 && loss_rng_.next_bool(loss_rate_)) {
    ++dropped_;  // channel time was spent, but the payload never arrives
    return;
  }
  engine_.schedule_at(free_at_, [cb = std::move(on_complete)] {
    if (cb) cb();
  });
}

Duration PcieBus::backlog() const {
  TimePoint now = engine_.now();
  return free_at_ > now ? free_at_ - now : Duration{};
}

double PcieBus::utilization() const {
  double elapsed = engine_.now().seconds();
  if (elapsed <= 0) return 0;
  // Subtract the part of busy time that lies in the future (queued work).
  double busy = busy_.seconds() - backlog().seconds();
  return std::clamp(busy / elapsed, 0.0, 1.0);
}

}  // namespace farm::asic
