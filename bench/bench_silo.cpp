// Silo: sharded columnar telemetry store — query folding throughput.
//
// BM_SiloQueries — a 200k-row mixed workload over 64 metric families,
// evaluated three ways: the monolithic single-ring EventStore, a 1-shard
// SiloStore (the compatibility configuration), and an 8-shard SiloStore
// folding on the Combine pool. Three claims under test:
//
//   1. Determinism: every aggregate is bit-identical across all three
//      stores (hard shape check — this is the Silo contract).
//   2. Compatibility overhead: the 1-shard silo costs ≤5% over the
//      monolithic ring (checked unconditionally; both paths are the same
//      fold code, so the budget covers only the shard indirection).
//   3. Throughput: ≥10x query throughput at 8 shards — checked only when
//      the host has ≥8 hardware threads (sort-dominated percentiles split
//      superlinearly); smaller machines still record the measured ratio
//      with hw_threads, bench_combine style, so trends stay comparable.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "telemetry/silo.h"
#include "util/rng.h"

using namespace farm;
using namespace farm::telemetry;

namespace {

constexpr std::size_t kRows = 200000;
constexpr int kFamilies = 64;
constexpr int kQueriesPerBatch = 5;

util::TimePoint at_ms(std::int64_t ms) {
  return util::TimePoint::origin() + util::Duration::ms(ms);
}

struct Fixture {
  Registry reg;
  std::vector<MetricId> metrics;
  // Per-shard capacity = the monolith's: hash routing is uneven across 64
  // families, and a hot shard of a split budget would evict rows the
  // monolith retains (sharded eviction is per-shard — the bit-identity
  // contract presumes the stores retain the same rows).
  EventStore mono{1u << 18};
  SiloStore s1{SiloConfig{.shards = 1, .capacity = 1u << 18}};
  SiloStore s8{SiloConfig{.shards = 8, .capacity = 8u << 18}};

  Fixture() {
    for (int i = 0; i < kFamilies; ++i)
      metrics.push_back(
          reg.counter("soil.leaf" + std::to_string(i) + ".poll_bytes"));
    constexpr EventKind kKinds[] = {EventKind::kAdd, EventKind::kSet,
                                    EventKind::kObserve};
    for (std::size_t i = 0; i < kRows; ++i) {
      MetricId m = metrics[util::derive_seed(21, i) % metrics.size()];
      EventKind k = kKinds[util::derive_seed(22, i) % 3];
      double v =
          static_cast<double>(util::derive_seed(23, i) % 1000003) / 97.0;
      mono.append(at_ms(static_cast<std::int64_t>(i / 16)), m, k, v);
      s1.append(at_ms(static_cast<std::int64_t>(i / 16)), m, k, v);
      s8.append(at_ms(static_cast<std::int64_t>(i / 16)), m, k, v);
    }
  }

  // One query batch: the aggregate mix a Scarecrow report tick issues.
  // Returns a fingerprint so batches across stores can be equality-checked
  // (and the work cannot be optimized away).
  template <typename Store>
  std::vector<double> batch(const Store& store) const {
    std::vector<double> out;
    out.push_back(Query(store, reg).sum());
    out.push_back(Query(store, reg).percentile(95));
    out.push_back(
        Query(store, reg).label("soil.*.poll_bytes").percentile(50));
    out.push_back(Query(store, reg).kind(EventKind::kAdd).mean());
    auto by = Query(store, reg).sum_by_component(1);
    double acc = 0;
    for (const auto& [k, v] : by) acc += v * static_cast<double>(k.size());
    out.push_back(acc);
    return out;
  }

  // Best-of-3 batch latency in seconds (min damps scheduler noise).
  template <typename Store>
  double time_batch(const Store& store, int reps) const {
    double best = 1e300;
    for (int t = 0; t < 3; ++t) {
      auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) {
        auto fp = batch(store);
        if (fp.empty()) std::abort();  // keep the loop observable
      }
      double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count() /
          reps;
      if (secs < best) best = secs;
    }
    return best;
  }
};

}  // namespace

int main() {
  bench::BenchJson json("silo");
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("Silo — sharded telemetry store, parallel query folding "
              "(%u hardware threads)\n\n", hw);
  Fixture fx;

  // Determinism first: all three stores answer every batch bit-identically.
  auto fp_mono = fx.batch(fx.mono);
  bool identical = fp_mono == fx.batch(fx.s1) && fp_mono == fx.batch(fx.s8);

  const int reps = 3;
  double t_mono = fx.time_batch(fx.mono, reps);
  double t_s1 = fx.time_batch(fx.s1, reps);
  double t_s8 = fx.time_batch(fx.s8, reps);
  double overhead = t_mono > 0 ? t_s1 / t_mono - 1.0 : 0.0;
  double speedup = t_s8 > 0 ? t_s1 / t_s8 : 0.0;
  double qps8 = t_s8 > 0 ? kQueriesPerBatch / t_s8 : 0.0;

  std::printf("BM_SiloQueries — %zu rows, %d families, %d-query batch\n",
              kRows, kFamilies, kQueriesPerBatch);
  std::printf("%12s | %12s %12s\n", "store", "t/batch(ms)", "queries/s");
  std::printf("%12s | %12.3f %12.0f\n", "monolith", t_mono * 1e3,
              kQueriesPerBatch / t_mono);
  std::printf("%12s | %12.3f %12.0f\n", "silo-1", t_s1 * 1e3,
              kQueriesPerBatch / t_s1);
  std::printf("%12s | %12.3f %12.0f\n", "silo-8", t_s8 * 1e3, qps8);

  auto hwp = bench::param("hw_threads", static_cast<int>(hw));
  json.record("batch_seconds", t_mono, "s",
              {bench::param("store", "monolith"), hwp,
               bench::param("rows", static_cast<int>(kRows))});
  json.record("batch_seconds", t_s1, "s",
              {bench::param("store", "silo"), bench::param("shards", 1), hwp});
  json.record("batch_seconds", t_s8, "s",
              {bench::param("store", "silo"), bench::param("shards", 8), hwp});
  json.record("single_shard_overhead", overhead, "frac", {hwp});
  json.record("speedup_8_shards", speedup, "x", {hwp});
  json.record("queries_per_second", qps8, "1/s",
              {bench::param("shards", 8), hwp});
  json.record("identical", identical ? 1 : 0, "bool", {hwp});

  // Shape checks: determinism and the 1-shard overhead budget apply
  // everywhere; the 10x bar needs the cores to exist.
  bool ok = identical && overhead <= 0.05;
  if (hw >= 8) ok &= speedup >= 10.0;
  std::printf("\nsilo == monolith: %s; 1-shard overhead %.1f%% (<=5%% %s); "
              "8-shard speedup %.2fx%s\n",
              identical ? "HOLDS" : "VIOLATED", overhead * 100,
              overhead <= 0.05 ? "HOLDS" : "VIOLATED", speedup,
              hw >= 8 ? (speedup >= 10.0 ? " (>=10x HOLDS)"
                                         : " (<10x VIOLATED)")
                      : " (host has <8 hardware threads; bar not applied)");
  return ok ? 0 : 1;
}
