// Virtual time for the discrete-event simulator.
//
// All simulated durations and instants are nanosecond-resolution signed
// 64-bit integers wrapped in strong types, so real (wall-clock) time and
// simulated time can never be mixed by accident. 2^63 ns ≈ 292 years of
// simulated time, far beyond any experiment here.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace farm::util {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration ns(std::int64_t v) { return Duration{v}; }
  static constexpr Duration us(std::int64_t v) { return Duration{v * 1'000}; }
  static constexpr Duration ms(std::int64_t v) {
    return Duration{v * 1'000'000};
  }
  static constexpr Duration sec(std::int64_t v) {
    return Duration{v * 1'000'000'000};
  }
  static constexpr Duration minutes(std::int64_t v) {
    return Duration{v * 60'000'000'000};
  }
  // Converts a floating-point second count (e.g. from an Almanac
  // expression like 10/res().PCIe) rounding to the nearest nanosecond.
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_positive() const { return ns_ > 0; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.ns_ * k};
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return a * k;
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration{a.ns_ / k};
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint origin() { return TimePoint{}; }
  static constexpr TimePoint from_ns(std::int64_t v) { return TimePoint{v}; }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ns_ + d.count_ns()};
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) {
    return t + d;
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::ns(a.ns_ - b.ns_);
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.ns_ - d.count_ns()};
  }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.count_ns();
    return *this;
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace farm::util
