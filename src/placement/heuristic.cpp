#include "placement/heuristic.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>

#include "placement/switch_lp.h"
#include "util/check.h"

namespace farm::placement {

namespace {

double res_dim(const ResourcesValue& r, std::size_t d) {
  switch (d) {
    case almanac::kVCpu:
      return r.vCPU;
    case almanac::kRam:
      return r.RAM;
    case almanac::kTcam:
      return r.TCAM;
    default:
      return r.PCIe;
  }
}

void add_dim(ResourcesValue& r, std::size_t d, double v) {
  switch (d) {
    case almanac::kVCpu:
      r.vCPU += v;
      break;
    case almanac::kRam:
      r.RAM += v;
      break;
    case almanac::kTcam:
      r.TCAM += v;
      break;
    default:
      r.PCIe += v;
      break;
  }
}

struct SwitchState {
  const SwitchModel* model = nullptr;
  ResourcesValue used{};                       // min-alloc + residue charges
  std::map<std::string, double> poll_demand;   // subject → max inv demand
  std::vector<PinnedSeed> pinned;
  std::vector<std::string> pinned_ids;

  double poll_total() const {
    double t = 0;
    for (const auto& [_, d] : poll_demand) t += d;
    return t;
  }

  // Incremental PCIe demand if `seed` polls at allocation `alloc`.
  double incremental_poll(const SeedModel& seed,
                          const ResourcesValue& alloc) const {
    double inc = 0;
    for (const auto& p : seed.polls) {
      double demand = model->alpha_poll * p.inv_ival.eval(alloc);
      auto it = poll_demand.find(p.subject);
      double existing = it == poll_demand.end() ? 0 : it->second;
      inc += std::max(0.0, demand - existing);
    }
    return inc;
  }

  bool fits(const SeedModel& seed, const ResourcesValue& alloc) const {
    for (std::size_t d = 0; d < almanac::kNumResources; ++d) {
      if (d == almanac::kPcie) continue;
      if (res_dim(used, d) + res_dim(alloc, d) >
          res_dim(model->capacity, d) + 1e-9)
        return false;
    }
    return poll_total() + incremental_poll(seed, alloc) <=
           model->capacity.PCIe + 1e-9;
  }

  void commit(const SeedModel& seed, int variant,
              const ResourcesValue& alloc) {
    for (std::size_t d = 0; d < almanac::kNumResources; ++d) {
      if (d == almanac::kPcie) continue;
      add_dim(used, d, res_dim(alloc, d));
    }
    for (const auto& p : seed.polls) {
      double demand = model->alpha_poll * p.inv_ival.eval(alloc);
      auto [it, _] = poll_demand.try_emplace(p.subject, 0.0);
      it->second = std::max(it->second, demand);
    }
    pinned.push_back({&seed, variant});
    pinned_ids.push_back(seed.id);
  }

  // Charges migration residue (non-poll dims only; polling residue is
  // second-order and short-lived).
  void charge_residue(const ResourcesValue& alloc) {
    for (std::size_t d = 0; d < almanac::kNumResources; ++d) {
      if (d == almanac::kPcie) continue;
      add_dim(used, d, res_dim(alloc, d));
    }
  }

  void remove(const std::string& seed_id) {
    for (std::size_t i = 0; i < pinned_ids.size(); ++i)
      if (pinned_ids[i] == seed_id) {
        pinned.erase(pinned.begin() + static_cast<std::ptrdiff_t>(i));
        pinned_ids.erase(pinned_ids.begin() +
                         static_cast<std::ptrdiff_t>(i));
        return;
      }
  }
};

// The residue a seed charges at its old switch when it moves.
ResourcesValue residue_of(const PlacementProblem& problem,
                          const std::string& seed_id) {
  auto it = problem.current_alloc.find(seed_id);
  return it == problem.current_alloc.end() ? ResourcesValue{0.5, 64, 8, 0.5}
                                           : it->second;
}

}  // namespace

PlacementResult solve_heuristic(const PlacementProblem& problem,
                                const HeuristicOptions& options) {
  auto t0 = std::chrono::steady_clock::now();
  PlacementResult result;

  std::unordered_map<net::NodeId, SwitchState> switches;
  for (const auto& sw : problem.switches) switches[sw.node].model = &sw;

  // Pre-compute per-seed, per-variant minimum utility / minimal allocation
  // (capacity-independent part).
  struct VariantInfo {
    std::optional<ResourcesValue> min_alloc;  // unbounded-box minimal alloc
    double min_util = 0;
  };
  std::unordered_map<const SeedModel*, std::vector<VariantInfo>> variant_info;
  ResourcesValue unbounded{1e9, 1e9, 1e9, 1e9};
  for (const auto& s : problem.seeds) {
    auto& infos = variant_info[&s];
    for (const auto& v : s.variants) {
      VariantInfo vi;
      vi.min_alloc = minimal_allocation(v, unbounded);
      ++result.lp_solves;
      if (vi.min_alloc) vi.min_util = v.utility(*vi.min_alloc);
      infos.push_back(vi);
    }
  }

  // --- Step 1: order tasks by decreasing minimum utility -------------------
  std::map<std::string, std::vector<const SeedModel*>> tasks;
  for (const auto& s : problem.seeds) tasks[s.task].push_back(&s);
  std::vector<std::pair<double, std::string>> task_order;
  for (const auto& [task, seeds] : tasks) {
    double u = 0;
    for (const SeedModel* s : seeds) {
      double best = 0;
      for (const auto& vi : variant_info[s]) best = std::max(best, vi.min_util);
      u += best;
    }
    task_order.emplace_back(u, task);
  }
  std::sort(task_order.rbegin(), task_order.rend());

  // --- Step 2: greedy placement --------------------------------------------
  struct Decision {
    net::NodeId node;
    int variant;
    ResourcesValue min_alloc;
  };
  std::unordered_map<std::string, Decision> decisions;

  for (const auto& [task_util, task] : task_order) {
    (void)task_util;
    std::vector<std::pair<const SeedModel*, Decision>> staged;
    bool task_ok = true;
    for (const SeedModel* s : tasks[task]) {
      auto cur = problem.current_placement.find(s->id);
      net::NodeId cur_node =
          cur == problem.current_placement.end() ? net::kInvalidNode
                                                 : cur->second;
      const auto& infos = variant_info[s];
      // Best (node, variant): highest min utility; among equals prefer the
      // current node (no migration), then the smallest incremental polling
      // demand (aggregation-friendliness).
      bool found = false;
      Decision best{};
      double best_score = -1;
      double best_poll = 0;
      bool best_is_current = false;
      for (net::NodeId n : s->candidates) {
        auto swit = switches.find(n);
        if (swit == switches.end()) continue;
        SwitchState& st = swit->second;
        for (std::size_t v = 0; v < s->variants.size(); ++v) {
          if (!infos[v].min_alloc) continue;
          ResourcesValue alloc = *infos[v].min_alloc;
          // Box-check against this switch's remaining capacity.
          if (!st.fits(*s, alloc)) continue;
          // Migration residue must also fit at the old switch.
          bool is_current = n == cur_node;
          if (!is_current && cur_node != net::kInvalidNode) {
            auto old_it = switches.find(cur_node);
            if (old_it != switches.end()) {
              ResourcesValue res = residue_of(problem, s->id);
              bool ok = true;
              for (std::size_t d = 0; d < almanac::kNumResources; ++d) {
                if (d == almanac::kPcie) continue;
                if (res_dim(old_it->second.used, d) + res_dim(res, d) >
                    res_dim(old_it->second.model->capacity, d) + 1e-9)
                  ok = false;
              }
              if (!ok) continue;
            }
          }
          double score = infos[v].min_util;
          double poll = st.incremental_poll(*s, alloc);
          bool better =
              !found || score > best_score + 1e-12 ||
              (score > best_score - 1e-12 &&
               ((is_current && !best_is_current) ||
                (is_current == best_is_current && poll < best_poll)));
          if (better) {
            found = true;
            best = Decision{n, static_cast<int>(v), alloc};
            best_score = score;
            best_poll = poll;
            best_is_current = is_current;
          }
        }
      }
      if (!found) {
        task_ok = false;
        break;
      }
      // Commit tentatively (capacity bookkeeping); rollback is wholesale.
      SwitchState& st = switches[best.node];
      st.commit(*s, best.variant, best.min_alloc);
      if (cur_node != net::kInvalidNode && cur_node != best.node) {
        auto old_it = switches.find(cur_node);
        if (old_it != switches.end())
          old_it->second.charge_residue(residue_of(problem, s->id));
      }
      staged.emplace_back(s, best);
    }
    if (!task_ok) {
      // C1: drop the whole task; rebuild switch states from scratch is
      // expensive — instead undo the staged commits.
      for (auto& [s, d] : staged) {
        SwitchState& st = switches[d.node];
        st.remove(s->id);
        for (std::size_t dd = 0; dd < almanac::kNumResources; ++dd) {
          if (dd == almanac::kPcie) continue;
          add_dim(st.used, dd, -res_dim(d.min_alloc, dd));
        }
        // Poll demand / residue over-accounting after rollback is accepted:
        // it only makes the remaining greedy slightly conservative.
      }
      continue;
    }
    for (auto& [s, d] : staged) decisions[s->id] = d;
  }

  // --- Step 3: per-switch LP redistribution --------------------------------
  // Migration residue per switch (seeds that moved away keep their old
  // allocation reserved during state transfer).
  std::unordered_map<net::NodeId, ResourcesValue> reserved;
  for (const auto& [seed_id, node] : problem.current_placement) {
    auto d = decisions.find(seed_id);
    if (d == decisions.end() || d->second.node == node) continue;
    ResourcesValue res = residue_of(problem, seed_id);
    auto& acc = reserved[node];
    acc.vCPU += res.vCPU;
    acc.RAM += res.RAM;
    acc.TCAM += res.TCAM;
    acc.PCIe += res.PCIe;
  }

  std::unordered_map<std::string, PlacementEntry> entries;
  std::unordered_map<net::NodeId, double> switch_utility;
  for (auto& [node, st] : switches) {
    auto lp = redistribute_on_switch(*st.model, st.pinned, reserved[node],
                                     &result.lp_solves);
    if (!lp) {
      // Fall back to the greedy minimal allocations.
      for (std::size_t i = 0; i < st.pinned.size(); ++i) {
        const auto& vi =
            variant_info[st.pinned[i].seed]
                        [static_cast<std::size_t>(st.pinned[i].variant)];
        PlacementEntry e;
        e.seed = st.pinned[i].seed->id;
        e.node = node;
        e.variant = st.pinned[i].variant;
        e.alloc = vi.min_alloc.value_or(ResourcesValue{});
        e.utility = vi.min_util;
        switch_utility[node] += e.utility;
        entries[e.seed] = e;
      }
      continue;
    }
    for (std::size_t i = 0; i < st.pinned.size(); ++i) {
      PlacementEntry e;
      e.seed = st.pinned[i].seed->id;
      e.node = node;
      e.variant = st.pinned[i].variant;
      e.alloc = lp->allocs[i];
      e.utility = lp->utilities[i];
      entries[e.seed] = e;
    }
    switch_utility[node] = lp->utility;
  }

  // --- Steps 4 & 5: migration by decreasing benefit ------------------------
  // Repeated until a sweep applies nothing (bounded): applying a move
  // changes the marginal value of others, so benefits are recomputed.
  std::size_t evals = 0;
  bool improved = options.enable_migration_pass;
  for (int sweep = 0; sweep < 4 && improved; ++sweep) {
    improved = false;
    struct Move {
      double benefit;
      const SeedModel* seed;
      net::NodeId from, to;
      int variant;
    };
    std::vector<Move> moves;
    for (const auto& s : problem.seeds) {
      if (evals >= options.max_migration_evals) break;
      auto eit = entries.find(s.id);
      if (eit == entries.end()) continue;
      net::NodeId from = eit->second.node;
      for (net::NodeId to : s.candidates) {
        if (to == from) continue;
        if (evals >= options.max_migration_evals) break;
        auto target_it = switches.find(to);
        auto source_it = switches.find(from);
        if (target_it == switches.end() || source_it == switches.end())
          continue;
        ++evals;
        // Benefit = ΔU(target with s) + ΔU(source without s).
        auto target_pinned = target_it->second.pinned;
        target_pinned.push_back({&s, eit->second.variant});
        ResourcesValue target_res = reserved[to];
        auto target_lp = redistribute_on_switch(
            *target_it->second.model, target_pinned, target_res,
            &result.lp_solves);
        if (!target_lp) continue;
        std::vector<PinnedSeed> source_pinned;
        for (const auto& p : source_it->second.pinned)
          if (p.seed->id != s.id) source_pinned.push_back(p);
        // Residue applies only when the seed is *actually deployed* at the
        // source (plc' = 1): the doubled-resources window exists while its
        // state transfers. Re-deciding a fresh placement is free.
        ResourcesValue source_res = reserved[from];
        auto curp = problem.current_placement.find(s.id);
        if (curp != problem.current_placement.end() && curp->second == from) {
          ResourcesValue own = residue_of(problem, s.id);
          source_res.vCPU += own.vCPU;
          source_res.RAM += own.RAM;
          source_res.TCAM += own.TCAM;
        }
        auto source_lp = redistribute_on_switch(
            *source_it->second.model, source_pinned, source_res,
            &result.lp_solves);
        if (!source_lp) continue;
        double benefit = (target_lp->utility - switch_utility[to]) +
                         (source_lp->utility - switch_utility[from]);
        if (benefit > 1e-9)
          moves.push_back({benefit, &s, from, to, eit->second.variant});
      }
    }
    std::sort(moves.begin(), moves.end(),
              [](const Move& a, const Move& b) { return a.benefit > b.benefit; });
    for (const auto& mv : moves) {
      // Re-evaluate against the evolving state; apply only if still
      // beneficial.
      auto& src = switches[mv.from];
      auto& dst = switches[mv.to];
      auto eit = entries.find(mv.seed->id);
      if (eit == entries.end() || eit->second.node != mv.from) continue;
      auto dst_pinned = dst.pinned;
      dst_pinned.push_back({mv.seed, mv.variant});
      auto dst_lp = redistribute_on_switch(*dst.model, dst_pinned,
                                           reserved[mv.to],
                                           &result.lp_solves);
      if (!dst_lp) continue;
      std::vector<PinnedSeed> src_pinned;
      for (const auto& p : src.pinned)
        if (p.seed->id != mv.seed->id) src_pinned.push_back(p);
      ResourcesValue src_res = reserved[mv.from];
      auto curp2 = problem.current_placement.find(mv.seed->id);
      if (curp2 != problem.current_placement.end() &&
          curp2->second == mv.from) {
        ResourcesValue own = residue_of(problem, mv.seed->id);
        src_res.vCPU += own.vCPU;
        src_res.RAM += own.RAM;
        src_res.TCAM += own.TCAM;
      }
      auto src_lp = redistribute_on_switch(*src.model, src_pinned, src_res,
                                           &result.lp_solves);
      if (!src_lp) continue;
      double benefit = (dst_lp->utility - switch_utility[mv.to]) +
                       (src_lp->utility - switch_utility[mv.from]);
      if (benefit <= 1e-9) continue;
      improved = true;
      // Apply the move.
      src.remove(mv.seed->id);
      dst.pinned = dst_pinned;
      dst.pinned_ids.push_back(mv.seed->id);
      reserved[mv.from] = src_res;  // residue persists during transfer
      switch_utility[mv.to] = dst_lp->utility;
      switch_utility[mv.from] = src_lp->utility;
      for (std::size_t i = 0; i < dst.pinned.size(); ++i) {
        auto& e = entries[dst.pinned[i].seed->id];
        e.seed = dst.pinned[i].seed->id;
        e.node = mv.to;
        e.variant = dst.pinned[i].variant;
        e.alloc = dst_lp->allocs[i];
        e.utility = dst_lp->utilities[i];
      }
      for (std::size_t i = 0; i < src_pinned.size(); ++i) {
        auto& e = entries[src_pinned[i].seed->id];
        e.alloc = src_lp->allocs[i];
        e.utility = src_lp->utilities[i];
      }
    }
  }

  for (auto& [_, e] : entries) result.placements.push_back(e);
  std::sort(result.placements.begin(), result.placements.end(),
            [](const PlacementEntry& a, const PlacementEntry& b) {
              return a.seed < b.seed;
            });
  result.total_utility = 0;
  for (const auto& e : result.placements) result.total_utility += e.utility;
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace farm::placement
