// Full MILP formulation of the placement problem (§IV-B/C/D).
//
// This is the "commodity solver" path the paper benchmarks Gurobi on
// (Fig. 7): exact on small instances, anytime-with-timeout on large ones.
// The nonlinear plc(s,n)·f(res) terms are linearized with the paper's
// observation that (C3) forces res = 0 whenever plc = 0 — plus a big-M
// relaxation for variant constraints whose polynomials are negative at 0.
// When branch-and-bound cannot produce any incumbent within the budget
// (huge instances), a first-fit primal start heuristic provides the
// fallback incumbent, mirroring commercial solvers' start heuristics.
#pragma once

#include "lp/milp.h"
#include "placement/heuristic.h"
#include "placement/model.h"

namespace farm::placement {

struct MilpPlacementOptions {
  double timeout_seconds = 60;
  lp::MilpOptions milp;  // inner solver knobs (gap, node limit, …)
  // Combine: run the (parallel, optionally multi-start) heuristic first and
  // hand its objective to branch-and-bound as a warm-start cutoff. Subtrees
  // that cannot beat the heuristic are pruned immediately; if the search
  // finds nothing better within budget, the heuristic placement is
  // returned instead of the first-fit fallback.
  bool warm_start = false;
  HeuristicOptions warm_start_heuristic;
};

PlacementResult solve_milp_placement(const PlacementProblem& problem,
                                     const MilpPlacementOptions& options = {});

// The first-fit primal heuristic used as incumbent fallback; exposed for
// testing and for ablations.
PlacementResult first_fit_placement(const PlacementProblem& problem);

}  // namespace farm::placement
