// Tests for the simplex LP and branch-and-bound MILP solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "lp/milp.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace farm::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(SimplexTest, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  →  (2, 6), obj 36.
  Model m;
  VarId x = m.add_continuous("x", 0, kInf, 3);
  VarId y = m.add_continuous("y", 0, kInf, 5);
  m.add_constraint("c1", {{x, 1}}, Sense::kLe, 4);
  m.add_constraint("c2", {{y, 2}}, Sense::kLe, 12);
  m.add_constraint("c3", {{x, 3}, {y, 2}}, Sense::kLe, 18);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36, kTol);
  EXPECT_NEAR(s.value(x), 2, kTol);
  EXPECT_NEAR(s.value(y), 6, kTol);
}

TEST(SimplexTest, SolvesMinimizationWithGeConstraints) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2  →  (10, 0)? cost 20 vs y=...
  // 2 < 3 so push x: x = 10, y = 0, obj 20.
  Model m;
  m.set_maximize(false);
  VarId x = m.add_continuous("x", 0, kInf, 2);
  VarId y = m.add_continuous("y", 0, kInf, 3);
  m.add_constraint("demand", {{x, 1}, {y, 1}}, Sense::kGe, 10);
  m.add_constraint("xmin", {{x, 1}}, Sense::kGe, 2);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 20, kTol);
  EXPECT_NEAR(s.value(x), 10, kTol);
}

TEST(SimplexTest, HandlesEqualityConstraints) {
  // max x + y s.t. x + y = 5, x <= 3 → obj 5.
  Model m;
  VarId x = m.add_continuous("x", 0, 3, 1);
  VarId y = m.add_continuous("y", 0, kInf, 1);
  m.add_constraint("eq", {{x, 1}, {y, 1}}, Sense::kEq, 5);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5, kTol);
  EXPECT_NEAR(s.value(x) + s.value(y), 5, kTol);
}

TEST(SimplexTest, DetectsInfeasibility) {
  Model m;
  VarId x = m.add_continuous("x", 0, kInf, 1);
  m.add_constraint("lo", {{x, 1}}, Sense::kGe, 10);
  m.add_constraint("hi", {{x, 1}}, Sense::kLe, 5);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  Model m;
  VarId x = m.add_continuous("x", 0, kInf, 1);
  m.add_constraint("lo", {{x, 1}}, Sense::kGe, 1);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, RespectsVariableLowerBounds) {
  // min x + y with x >= 3, y >= 4 (bounds, not rows).
  Model m;
  m.set_maximize(false);
  VarId x = m.add_continuous("x", 3, kInf, 1);
  VarId y = m.add_continuous("y", 4, kInf, 1);
  m.add_constraint("c", {{x, 1}, {y, 1}}, Sense::kLe, 100);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 3, kTol);
  EXPECT_NEAR(s.value(y), 4, kTol);
  EXPECT_NEAR(s.objective, 7, kTol);
}

TEST(SimplexTest, RespectsUpperBounds) {
  Model m;
  VarId x = m.add_continuous("x", 0, 2.5, 1);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 2.5, kTol);
}

TEST(SimplexTest, SolvesDegenerateProblemWithoutCycling) {
  // Classic Beale cycling example (with Dantzig rule simplex can cycle;
  // the stall-triggered Bland fallback must terminate).
  Model m;
  m.set_maximize(false);
  VarId x1 = m.add_continuous("x1", 0, kInf, -0.75);
  VarId x2 = m.add_continuous("x2", 0, kInf, 150);
  VarId x3 = m.add_continuous("x3", 0, kInf, -0.02);
  VarId x4 = m.add_continuous("x4", 0, kInf, 6);
  m.add_constraint("r1", {{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}},
                   Sense::kLe, 0);
  m.add_constraint("r2", {{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}},
                   Sense::kLe, 0);
  m.add_constraint("r3", {{x3, 1}}, Sense::kLe, 1);
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST(SimplexTest, LargeRandomFeasibleInstancesStayConsistent) {
  // Property: for random feasible covering LPs, the solution must satisfy
  // every constraint and match the objective recomputed from values.
  util::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    Model m;
    m.set_maximize(false);
    int n = static_cast<int>(rng.next_int(3, 12));
    int k = static_cast<int>(rng.next_int(2, 8));
    for (int j = 0; j < n; ++j)
      m.add_continuous("x" + std::to_string(j), 0, rng.next_double(5, 50),
                       rng.next_double(1, 10));
    for (int i = 0; i < k; ++i) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j)
        if (rng.next_bool(0.6))
          terms.push_back({j, rng.next_double(0.5, 3)});
      if (terms.empty()) terms.push_back({0, 1.0});
      m.add_constraint("c" + std::to_string(i), terms, Sense::kGe,
                       rng.next_double(1, 4));
    }
    auto s = solve_lp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "trial " << trial;
    double obj = 0;
    for (int j = 0; j < n; ++j) {
      double v = s.value(j);
      EXPECT_GE(v, -kTol);
      EXPECT_LE(v, m.vars()[static_cast<std::size_t>(j)].upper + kTol);
      obj += m.vars()[static_cast<std::size_t>(j)].objective * v;
    }
    EXPECT_NEAR(obj, s.objective, 1e-5);
    for (const auto& c : m.constraints()) {
      double lhs = 0;
      for (const auto& t : c.terms) lhs += t.coeff * s.value(t.var);
      EXPECT_GE(lhs, c.rhs - 1e-6) << "constraint " << c.name;
    }
  }
}

TEST(MilpTest, SolvesKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary → a + c (obj 17)
  // vs b + c (obj 20): 4+2=6 feasible → 20.
  Model m;
  VarId a = m.add_binary("a", 10);
  VarId b = m.add_binary("b", 13);
  VarId c = m.add_binary("c", 7);
  m.add_constraint("cap", {{a, 3}, {b, 4}, {c, 2}}, Sense::kLe, 6);
  auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 20, kTol);
  EXPECT_NEAR(s.value(a), 0, kTol);
  EXPECT_NEAR(s.value(b), 1, kTol);
  EXPECT_NEAR(s.value(c), 1, kTol);
}

TEST(MilpTest, IntegerSolutionDiffersFromRelaxation) {
  // max x s.t. 2x <= 5, x integer → 2 (relaxation: 2.5).
  Model m;
  VarId x = m.add_var("x", VarKind::kInteger, 0, 10, 1);
  m.add_constraint("c", {{x, 2}}, Sense::kLe, 5);
  auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2, kTol);
}

TEST(MilpTest, MixedIntegerContinuous) {
  // max 5y + x s.t. x <= 3.7, y binary, x + 10y <= 11 → y=1, x=1 → 6.
  Model m;
  VarId x = m.add_continuous("x", 0, 3.7, 1);
  VarId y = m.add_binary("y", 5);
  m.add_constraint("c", {{x, 1}, {y, 10}}, Sense::kLe, 11);
  auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(y), 1, kTol);
  EXPECT_NEAR(s.value(x), 1, kTol);
  EXPECT_NEAR(s.objective, 6, kTol);
}

TEST(MilpTest, InfeasibleIntegerModel) {
  Model m;
  VarId x = m.add_binary("x", 1);
  VarId y = m.add_binary("y", 1);
  m.add_constraint("sum", {{x, 1}, {y, 1}}, Sense::kGe, 3);
  EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
}

TEST(MilpTest, TimeoutReturnsIncumbent) {
  // A 40-item knapsack with correlated weights explores many nodes; with a
  // near-zero budget we must still get *some* feasible incumbent (from the
  // root rounding heuristic) or an honest kTimeLimit without values.
  util::Rng rng(7);
  Model m;
  std::vector<Term> cap;
  for (int i = 0; i < 40; ++i) {
    double w = rng.next_double(5, 20);
    VarId v = m.add_binary("v" + std::to_string(i), w + rng.next_double(0, 1));
    cap.push_back({v, w});
  }
  m.add_constraint("cap", cap, Sense::kLe, 100);
  MilpOptions opt;
  opt.timeout_seconds = 0.02;
  auto s = solve_milp(m, opt);
  EXPECT_TRUE(s.status == SolveStatus::kTimeLimit ||
              s.status == SolveStatus::kOptimal);
  if (s.feasible() && !s.values.empty()) {
    double w = 0;
    for (const auto& t : cap) w += t.coeff * s.value(t.var);
    EXPECT_LE(w, 100 + 1e-6);
  }
}

TEST(MilpTest, MatchesBruteForceOnRandomBinaryPrograms) {
  // Property: on small random set-packing instances the B&B optimum must
  // equal exhaustive enumeration.
  util::Rng rng(123);
  for (int trial = 0; trial < 15; ++trial) {
    int n = static_cast<int>(rng.next_int(4, 10));
    std::vector<double> profit(static_cast<std::size_t>(n));
    std::vector<std::vector<double>> rows;
    int k = static_cast<int>(rng.next_int(1, 4));
    std::vector<double> caps;
    Model m;
    for (int j = 0; j < n; ++j) {
      profit[static_cast<std::size_t>(j)] = rng.next_double(1, 10);
      m.add_binary("x" + std::to_string(j), profit[static_cast<std::size_t>(j)]);
    }
    for (int i = 0; i < k; ++i) {
      std::vector<double> row(static_cast<std::size_t>(n));
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j) {
        row[static_cast<std::size_t>(j)] = rng.next_double(0, 5);
        terms.push_back({j, row[static_cast<std::size_t>(j)]});
      }
      double cap = rng.next_double(3, 12);
      caps.push_back(cap);
      rows.push_back(row);
      m.add_constraint("c" + std::to_string(i), terms, Sense::kLe, cap);
    }
    auto s = solve_milp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "trial " << trial;

    double best = 0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      bool ok = true;
      for (int i = 0; i < k && ok; ++i) {
        double lhs = 0;
        for (int j = 0; j < n; ++j)
          if (mask & (1 << j)) lhs += rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        ok = lhs <= caps[static_cast<std::size_t>(i)] + 1e-9;
      }
      if (!ok) continue;
      double obj = 0;
      for (int j = 0; j < n; ++j)
        if (mask & (1 << j)) obj += profit[static_cast<std::size_t>(j)];
      best = std::max(best, obj);
    }
    EXPECT_NEAR(s.objective, best, 1e-5) << "trial " << trial;
  }
}

TEST(SimplexTest, TerminatesOnBealeCyclingExample) {
  // Beale (1955): the classic LP on which Dantzig's rule cycles forever
  // under naive tie-breaking. The stall counter must hand over to Bland's
  // rule — and Bland's leaving-row ties must be exact, or the termination
  // proof does not apply. Optimum -1/20 at x = (1/25, 0, 1, 0).
  Model m;
  m.set_maximize(false);
  VarId x1 = m.add_continuous("x1", 0, kInf, -0.75);
  VarId x2 = m.add_continuous("x2", 0, kInf, 150);
  VarId x3 = m.add_continuous("x3", 0, kInf, -0.02);
  VarId x4 = m.add_continuous("x4", 0, kInf, 6);
  m.add_constraint("c1", {{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}},
                   Sense::kLe, 0);
  m.add_constraint("c2", {{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}},
                   Sense::kLe, 0);
  m.add_constraint("c3", {{x3, 1}}, Sense::kLe, 1);
  LpOptions opt;
  opt.max_iterations = 10000;  // cycling would exhaust this
  auto s = solve_lp(m, opt);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, kTol);
  EXPECT_NEAR(s.value(x1), 0.04, kTol);
  EXPECT_NEAR(s.value(x3), 1, kTol);
}

TEST(SimplexTest, MassivelyDegenerateTiesStayFeasible) {
  // Thirty copies of the same binding constraint make every ratio-test a
  // 30-way tie. The old eps-window tie-break let best_ratio drift upward
  // across chained near-ties, leaving slightly negative basics; the
  // two-pass exact-minimum test must return a feasible optimum.
  Model m;
  std::vector<VarId> xs;
  for (int j = 0; j < 6; ++j)
    xs.push_back(m.add_continuous("x", 0, kInf, 1 + 0.01 * j));
  for (int i = 0; i < 30; ++i) {
    std::vector<Term> terms;
    for (VarId x : xs) terms.push_back({x, 1.0});
    m.add_constraint("cap", std::move(terms), Sense::kLe, 1);
  }
  auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.05, kTol);  // all weight on the best variable
  double total = 0;
  for (VarId x : xs) {
    EXPECT_GE(s.value(x), -1e-9);  // no negative basics from ratio drift
    total += s.value(x);
  }
  EXPECT_LE(total, 1 + 1e-6);
}

TEST(MilpTest, WarmStartObjectivePrunesWithoutChangingOptimum) {
  // max 5a + 4b + 3c s.t. a+b+c <= 2 (binary) → optimum 9 (a, b).
  Model m;
  VarId a = m.add_binary("a", 5);
  VarId b = m.add_binary("b", 4);
  VarId c = m.add_binary("c", 3);
  m.add_constraint("cap", {{a, 1}, {b, 1}, {c, 1}}, Sense::kLe, 2);

  auto plain = solve_milp(m);
  ASSERT_EQ(plain.status, SolveStatus::kOptimal);
  EXPECT_NEAR(plain.objective, 9, kTol);

  // A warm start below the optimum must not cut off the true solution.
  MilpOptions warm;
  warm.warm_start_objective = 8.5;
  auto s = solve_milp(m, warm);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9, kTol);
  EXPECT_LE(s.nodes_explored, plain.nodes_explored);

  // A warm start AT the optimum prunes everything: no incumbent is found,
  // which tells the caller its warm solution already wins.
  MilpOptions tight;
  tight.warm_start_objective = 9;
  auto pruned = solve_milp(m, tight);
  EXPECT_FALSE(pruned.feasible());
}

// --- Revised sparse simplex vs dense tableau --------------------------------

// Random LPs mixing senses, finite/infinite upper bounds, and objective
// signs: both implementations must agree on status and (when optimal) on
// the objective, and the sparse solution must satisfy the model exactly
// like the dense one.
TEST(SimplexTest, SparseAndDenseAgreeOnRandomInstances) {
  util::Rng rng(2024);
  LpOptions sparse, dense;
  sparse.algorithm = LpAlgorithm::kRevisedSparse;
  dense.algorithm = LpAlgorithm::kDenseTableau;
  int optimal = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Model m;
    m.set_maximize(rng.next_bool(0.5));
    int n = static_cast<int>(rng.next_int(2, 10));
    int k = static_cast<int>(rng.next_int(1, 8));
    for (int j = 0; j < n; ++j) {
      double ub = rng.next_bool(0.5) ? rng.next_double(1, 20) : kInf;
      double lo = rng.next_bool(0.3) ? rng.next_double(0, 0.5) : 0;
      m.add_continuous("x" + std::to_string(j), lo, ub,
                       rng.next_double(-5, 5));
    }
    for (int i = 0; i < k; ++i) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j)
        if (rng.next_bool(0.5)) terms.push_back({j, rng.next_double(-2, 3)});
      if (terms.empty()) terms.push_back({0, 1.0});
      Sense sense = rng.next_bool(0.6)   ? Sense::kLe
                    : rng.next_bool(0.5) ? Sense::kGe
                                         : Sense::kEq;
      m.add_constraint("c" + std::to_string(i), terms, sense,
                       rng.next_double(-2, 8));
    }
    auto a = solve_lp(m, sparse);
    auto b = solve_lp(m, dense);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status != SolveStatus::kOptimal) continue;
    ++optimal;
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
    // The sparse solution satisfies every constraint and bound.
    for (int j = 0; j < n; ++j) {
      const auto& v = m.vars()[static_cast<std::size_t>(j)];
      EXPECT_GE(a.value(j), v.lower - 1e-7) << "trial " << trial;
      EXPECT_LE(a.value(j), v.upper + 1e-7) << "trial " << trial;
    }
    for (const auto& c : m.constraints()) {
      double lhs = 0;
      for (const auto& t : c.terms) lhs += t.coeff * a.value(t.var);
      if (c.sense == Sense::kLe) EXPECT_LE(lhs, c.rhs + 1e-6);
      if (c.sense == Sense::kGe) EXPECT_GE(lhs, c.rhs - 1e-6);
      if (c.sense == Sense::kEq) EXPECT_NEAR(lhs, c.rhs, 1e-6);
    }
  }
  EXPECT_GE(optimal, 10) << "suite degenerated: too few optimal instances";
}

TEST(SimplexTest, CellBudgetHelperBoundaryAndOverflow) {
  // rows * (cols + 1) == budget is allowed; one more cell is not.
  EXPECT_FALSE(exceeds_cell_budget(10, 9, 100));   // 10 * 10 == 100
  EXPECT_TRUE(exceeds_cell_budget(10, 10, 100));   // 10 * 11 > 100
  EXPECT_FALSE(exceeds_cell_budget(0, 1'000'000, 1));  // no rows, no cells
  // Sizes whose product overflows 64 bits must still reject cleanly.
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_TRUE(exceeds_cell_budget(huge, huge, huge));
  EXPECT_TRUE(exceeds_cell_budget(
      2, std::numeric_limits<std::size_t>::max(), 1'000'000));
}

// The guard used to live in two hand-duplicated copies (dense build +
// dense entry); the sparse path added a third client. Sweeping the budget
// across the whole interesting range must show both algorithms flipping
// from rejection (kTimeLimit) to solving at exactly the same threshold —
// the guard is computed on dense-equivalent dimensions for both.
TEST(SimplexTest, CellBudgetRejectsIdenticallyAcrossAlgorithms) {
  Model m;
  VarId x = m.add_continuous("x", 0, 9, 2);     // finite ub → dense ub row
  VarId y = m.add_continuous("y", 0, kInf, 3);
  VarId z = m.add_continuous("z", 1, 4, 1);     // shifted + ub row
  m.add_constraint("c1", {{x, 1}, {y, 2}}, Sense::kLe, 10);
  m.add_constraint("c2", {{y, 1}, {z, -1}}, Sense::kGe, 1);
  m.add_constraint("c3", {{x, 1}, {z, 1}}, Sense::kEq, 5);

  LpOptions sparse, dense;
  sparse.algorithm = LpAlgorithm::kRevisedSparse;
  dense.algorithm = LpAlgorithm::kDenseTableau;
  int transitions = 0;
  SolveStatus prev_sparse = SolveStatus::kTimeLimit;
  for (std::size_t cells = 1; cells <= 400; ++cells) {
    sparse.max_tableau_cells = cells;
    dense.max_tableau_cells = cells;
    auto a = solve_lp(m, sparse);
    auto b = solve_lp(m, dense);
    ASSERT_EQ(a.status, b.status) << "budget " << cells;
    if (a.status != prev_sparse) {
      ++transitions;
      prev_sparse = a.status;
    }
  }
  // Exactly one flip: rejected below the threshold, optimal above it.
  EXPECT_EQ(transitions, 1);
  EXPECT_EQ(prev_sparse, SolveStatus::kOptimal);
}

}  // namespace
}  // namespace farm::lp
