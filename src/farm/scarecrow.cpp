#include "farm/scarecrow.h"

#include <algorithm>

#include "farm/system.h"
#include "telemetry/prof.h"
#include "telemetry/report.h"
#include "util/log.h"

namespace farm::core {

std::vector<std::string> Scarecrow::default_rules() {
  return {
      // A soil that stops delivering polls for a second is in trouble —
      // crashed switch, dead PCIe channel, or starved CPU. Primary
      // detector for chaos switch-crash faults.
      "poll-staleness: staleness(soil.*.poll_deliveries) > 1",
      // Sustained PCIe timeout bursts (lossy channel). Healthy soils see
      // none; a loss burst at 50 ms poll intervals produces many per second.
      "poll-timeouts: rate(soil.*.poll_timeouts) > 2 for 100ms",
      // PCIe busy fraction against the monitoring budget: busy_ns grows by
      // 1e9/s when the channel never rests. Smoothed (EWMA) so a single
      // large transfer doesn't trip it.
      "pcie-saturated: burn(pcie.*.busy_ns) > 920000000 alpha 0.5",
      // Per-report management-network delivery lag toward harvesters.
      "bus-lag: value(bus.up.lag_ms) > 50",
      // Seeds dark too long between a switch failure and their reseed.
      "reseed-downtime: value(seeder.last_downtime_ms) > 2000",
      // Monitoring TCAM partition nearly full: the next count rule drops.
      "tcam-occupancy: value(tcam.*.mon_frac) > 0.9",
      // A Silo shard whose lifetime-append gauge stops moving has lost its
      // metric families (instrumentation wedged or the hub muted mid-run).
      // Shards that never received a row stay silent (never-active gauges
      // measure as nullopt), so idle shards in short runs cannot false-fire;
      // 30 s of silence after traffic is decisive.
      "silo-shard-stalled: staleness(silo.shard.*.appended) > 30",
  };
}

Scarecrow::Scarecrow(FarmSystem& system, ScarecrowConfig config)
    : system_(system), config_(config), alerts_(system.telemetry()) {
  if (config_.install_default_rules) {
    for (const std::string& spec : default_rules())
      FARM_CHECK_MSG(alerts_.add_rule(spec), "bad built-in rule");
  }
  for (const std::string& spec : config_.rules) {
    if (!alerts_.add_rule(spec)) {
      FARM_LOG(kWarn) << "scarecrow: unparseable rule skipped: " << spec;
    }
  }

  // Static tree shape: spines in one group, leaves in pods of pod_leaves.
  const net::SpineLeaf& fabric = system_.fabric();
  health_.add_group("spines");
  for (net::NodeId n : fabric.spine_switches)
    health_.set_leaf(fabric.topo.node(n).name, "spines", 1);
  const int per_pod = std::max(1, config_.pod_leaves);
  for (std::size_t i = 0; i < fabric.leaf_switches.size(); ++i) {
    const std::string pod = "pod" + std::to_string(i / per_pod);
    if (!health_.has_node(pod)) health_.add_group(pod);
    health_.set_leaf(fabric.topo.node(fabric.leaf_switches[i]).name, pod, 1);
  }

  m_fabric_ = system_.telemetry().gauge("health.fabric");

  // The evaluator only runs when telemetry actually records: muted or
  // compiled-out hubs would feed it frozen aggregates and pay for nothing.
  if (config_.enabled && telemetry::Hub::compiled_in() &&
      system_.telemetry().enabled() && config_.eval_period.is_positive()) {
    task_ = std::make_unique<sim::PeriodicTask>(
        system_.engine(), config_.eval_period, [this] { evaluate_now(); });
    task_->start();
  }
}

void Scarecrow::evaluate_now() {
  FARM_PROF_SCOPE("scarecrow/evaluate");
  // Refresh the silo.shard.* gauge family first so this tick's rules (the
  // silo-shard-stalled staleness watch) see current shard occupancy.
  system_.telemetry().publish_silo_gauges();
  alerts_.evaluate(system_.engine().now());
  refresh_health();
}

void Scarecrow::refresh_health() {
  const telemetry::Registry& reg = system_.telemetry().registry();
  const net::SpineLeaf& fabric = system_.fabric();
  auto grade = [&](net::NodeId n) {
    const std::string& name = fabric.topo.node(n).name;
    // Base: the seeder's graded heartbeat view (1 = current, 0 = dead).
    double score = system_.seeder().health_grade(n);
    // Every firing alert whose metric names this switch halves the score —
    // a switch that is alive but drowning in PCIe timeouts is degraded,
    // not healthy.
    for (const telemetry::Alert& a : alerts_.alerts()) {
      if (a.state != telemetry::AlertState::kFiring) continue;
      if (telemetry::label_component(reg.name(a.metric), 1) == name)
        score *= 0.5;
    }
    health_.set_leaf_score(name, score);
  };
  for (net::NodeId n : fabric.spine_switches) grade(n);
  for (net::NodeId n : fabric.leaf_switches) grade(n);
  system_.telemetry().level(m_fabric_, health_.fabric_score());
}

void Scarecrow::write_report(std::ostream& os) const {
  // The farm report carries the Furrow control-plane profile alongside the
  // virtual-time telemetry: same run, wall-clock view of the solver.
  telemetry::prof::Snapshot profile =
      telemetry::prof::Profiler::instance().snapshot();
  telemetry::ReportInputs in;
  in.hub = &system_.telemetry();
  in.alerts = &alerts_;
  in.health = &health_;
  in.profile = &profile;
  in.now = system_.engine().now();
  telemetry::write_farm_report(os, in);
}

void Scarecrow::write_report_json(std::ostream& os) const {
  telemetry::prof::Snapshot profile =
      telemetry::prof::Profiler::instance().snapshot();
  telemetry::ReportInputs in;
  in.hub = &system_.telemetry();
  in.alerts = &alerts_;
  in.health = &health_;
  in.profile = &profile;
  in.now = system_.engine().now();
  telemetry::write_farm_report_json(os, in);
}

}  // namespace farm::core
