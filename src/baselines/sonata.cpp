#include "baselines/sonata.h"

#include <cmath>

namespace farm::baselines {

SonataProcessor::SonataProcessor(Engine& engine, SonataConfig config,
                                 int cpu_cores)
    : engine_(engine),
      config_(config),
      cpu_(engine, cpu_cores, sim::cost::kContextSwitch),
      batcher_(engine, config.micro_batch, [this] { run_batch(); }) {
  tel_ = &engine_.telemetry();
  m_bytes_ = tel_->counter("sonata.processor.bytes");
  m_detections_ = tel_->counter("sonata.processor.detections");
}

void SonataProcessor::ingest(const std::string& key, std::uint64_t bytes) {
  meter_stream(static_cast<std::uint64_t>(config_.record_bytes));
  pending_[key] += bytes;
}

void SonataProcessor::meter_stream(std::uint64_t bytes) {
  ingress_.add(bytes);
  // Per-record path (one call per reduced tuple): registry-only.
  tel_->count(m_bytes_, static_cast<double>(bytes));
}

void SonataProcessor::run_batch() {
  if (pending_.empty()) return;
  auto batch = std::move(pending_);
  pending_.clear();
  // Batch evaluation costs CPU proportional to tuple count; results land
  // when the job completes (micro-batch processing delay).
  Duration demand =
      sim::cost::kCollectorRecordCpu * static_cast<std::int64_t>(batch.size());
  cpu_.submit(1, demand, [this, batch = std::move(batch)] {
    for (const auto& [key, bytes] : batch) {
      ++processed_;
      if (bytes >= threshold_) {
        detections_.push_back({key, engine_.now()});
        tel_->add(m_detections_);
      }
    }
  });
}

SonataQuery::SonataQuery(Engine& engine, asic::SwitchChassis& chassis,
                         SonataProcessor& processor, net::Filter match,
                         SonataConfig config)
    : engine_(engine),
      chassis_(chassis),
      processor_(processor),
      config_(config),
      window_task_(engine, config.window, [this] { on_window_end(); }) {
  asic::TcamRule rule;
  rule.pattern = std::move(match);
  rule.action = asic::RuleAction::kMirror;
  rule.note = "sonata";
  if (auto id = chassis_.tcam().add_rule(rule)) mirror_rule_ = *id;
  subscriber_ = chassis_.add_mirror_subscriber(
      [this](const net::PacketHeader& h, std::uint64_t count) {
        // Mirrored packets cross the PCIe bus and are reduced per key on
        // the switch CPU; the reduce itself is a simple aggregate (the
        // statefulness limit the paper criticizes).
        auto& slot = window_[h.src_ip.to_string() + ">" +
                             h.dst_ip.to_string()];
        slot.first += static_cast<std::uint64_t>(h.size_bytes) * count;
        slot.second += count;
      });
}

SonataQuery::~SonataQuery() {
  window_task_.stop();
  if (mirror_rule_ != asic::kInvalidRule)
    chassis_.tcam().remove_rule(mirror_rule_);
  if (subscriber_) chassis_.remove_mirror_subscriber(subscriber_);
}

void SonataQuery::on_window_end() {
  if (window_.empty()) return;
  auto window = std::move(window_);
  window_.clear();
  // Export: the reduce compresses the raw tuple stream by the aggregation
  // factor; the residue crosses PCIe (mirror path) and the management
  // network. One record per key carries the reduced bytes.
  std::uint64_t raw_tuples = 0;
  for (const auto& [_, v] : window) raw_tuples += v.second;
  auto exported_tuples = static_cast<std::uint64_t>(std::ceil(
      static_cast<double>(raw_tuples) * (1.0 - config_.aggregation_factor)));
  exported_tuples = std::max<std::uint64_t>(exported_tuples, window.size());
  exported_ += exported_tuples;

  // Mirrored traffic already consumed PCIe implicitly; model the reduced
  // export batch crossing the bus once.
  chassis_.pcie().request(static_cast<int>(std::min<std::uint64_t>(
                              exported_tuples, 10'000)),
                          [] {});
  chassis_.cpu().submit(3, sim::cost::kPollEntryCpu *
                               static_cast<std::int64_t>(raw_tuples));

  std::uint64_t wire_bytes =
      exported_tuples * static_cast<std::uint64_t>(config_.record_bytes);
  Duration transit =
      sim::cost::kControlPathLatency +
      Duration::from_seconds(static_cast<double>(wire_bytes) * 8.0 /
                             sim::cost::kControlLinkBandwidthBps);
  engine_.schedule_after(transit, [this, window = std::move(window),
                                   exported_tuples] {
    // Meter the whole reduced stream, deliver per-key aggregates.
    for (std::uint64_t i = 1; i < exported_tuples; ++i)
      processor_.meter_stream(static_cast<std::uint64_t>(config_.record_bytes));
    for (const auto& [key, v] : window) processor_.ingest(key, v.first);
  });
}

int NewtonQueryManager::install(asic::SwitchChassis& chassis,
                                net::Filter match) {
  int id = next_id_++;
  auto q = std::make_unique<SonataQuery>(engine_, chassis, processor_,
                                         std::move(match), config_);
  q->start();
  queries_.emplace(id, std::move(q));
  return id;
}

void NewtonQueryManager::uninstall(int id) { queries_.erase(id); }

}  // namespace farm::baselines
