// Winnow engine (DESIGN.md §15): interval + constancy fixpoint over the
// state graph, final fact-collection pass, and the AI001..AI005 pass.
#include "almanac/verify/absint.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "almanac/interp.h"
#include "almanac/verify/passes.h"

namespace farm::almanac::verify::absint {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// 2^63 rounded; values past the margin are provably outside int64.
constexpr double kI64Lo = -9223372036854775808.0;
constexpr double kI64Hi = 9223372036854775808.0;
constexpr double kOverflowMargin = 9.3e18;
// Integral singletons beyond 2^53 lose precision in doubles; never fold.
constexpr double kExactIntLimit = 9007199254740992.0;

// Threshold ladder for widening: unstable bounds jump to the next rung
// instead of straight to infinity, so loop guards like `i < 48` stay
// provable after stabilization.
const double kRungs[] = {0,    1,    2,     4,     8,    16,   32,
                         48,   64,   128,   256,   1024, 4096, 65536,
                         1e6,  1e9,  4.3e9, 1e12,  1e15, kI64Hi};

double widen_hi(double hi) {
  for (double r : kRungs)
    if (hi <= r) return r;
  return kInf;
}
double widen_lo(double lo) {
  for (auto it = std::rbegin(kRungs); it != std::rend(kRungs); ++it)
    if (lo >= -*it) return -*it;
  return -kInf;
}

// Outward-round endpoints past the exact-integer range of a double.
// Concrete int64 arithmetic is exact while double endpoint arithmetic
// rounds to nearest, and rounding monotonicity only protects float
// semantics (where the interpreter itself computes in doubles) — e.g.
// 2^62 - 36 rounds straight back to 2^62, so a register concretely
// drifting downward would escape a "singleton" envelope. The relative
// 1e-12 slack dwarfs any accumulated rounding error and is negligible
// against the 9.3e18 overflow margin.
Interval iv_outward(Interval v) {
  if (std::isfinite(v.lo) && std::abs(v.lo) >= kExactIntLimit)
    v.lo -= std::abs(v.lo) * 1e-12;
  if (std::isfinite(v.hi) && std::abs(v.hi) >= kExactIntLimit)
    v.hi += std::abs(v.hi) * 1e-12;
  return v;
}

std::string bound_str(double b) {
  if (b == kInf) return "+inf";
  if (b == -kInf) return "-inf";
  if (std::abs(b) < kExactIntLimit && b == std::floor(b))
    return std::to_string(static_cast<std::int64_t>(b));
  return std::to_string(b);
}

}  // namespace

// --- Interval ---------------------------------------------------------------

Interval Interval::top() { return {-kInf, kInf}; }
Interval Interval::point(double v) { return {v, v}; }
bool Interval::is_point() const { return lo == hi && std::isfinite(lo); }
bool Interval::contains(double v) const { return v >= lo && v <= hi; }
std::string Interval::to_string() const {
  return "[" + bound_str(lo) + ", " + bound_str(hi) + "]";
}

// --- AbsVal -----------------------------------------------------------------

AbsVal AbsVal::bottom() {
  AbsVal v;
  v.kind_ = Kind::kBottom;
  return v;
}
AbsVal AbsVal::top() { return AbsVal(); }
AbsVal AbsVal::num_int(double lo, double hi) {
  AbsVal v;
  v.kind_ = Kind::kNum;
  v.iv_ = {lo, hi};
  v.is_int_ = true;
  return v;
}
AbsVal AbsVal::num_float(double lo, double hi) {
  AbsVal v;
  v.kind_ = Kind::kNum;
  v.iv_ = {lo, hi};
  v.is_int_ = false;
  return v;
}
AbsVal AbsVal::boolean(bool b) {
  AbsVal v;
  v.kind_ = Kind::kConst;
  v.cbool_ = b;
  return v;
}
AbsVal AbsVal::string_const(std::string s) {
  AbsVal v;
  v.kind_ = Kind::kConst;
  v.is_string_ = true;
  v.cstr_ = std::move(s);
  return v;
}

AbsVal AbsVal::of_value(const Value& v) {
  if (v.is_bool()) return boolean(v.as_bool());
  if (v.is_int()) return num_int(static_cast<double>(v.as_int()),
                                 static_cast<double>(v.as_int()));
  if (v.is_float()) {
    if (!std::isfinite(v.as_float())) return num_float(-kInf, kInf);
    return num_float(v.as_float(), v.as_float());
  }
  if (v.is_string()) return string_const(v.as_string());
  return top();
}

bool AbsVal::is_const_bool() const {
  return kind_ == Kind::kConst && !is_string_;
}
bool AbsVal::const_bool() const { return cbool_; }
bool AbsVal::is_const_string() const {
  return kind_ == Kind::kConst && is_string_;
}
const std::string& AbsVal::const_string() const { return cstr_; }

bool AbsVal::singleton(Value* out) const {
  if (is_const_bool()) {
    *out = Value(cbool_);
    return true;
  }
  if (is_const_string()) {
    *out = Value(cstr_);
    return true;
  }
  if (kind_ == Kind::kNum && iv_.is_point()) {
    // Beyond 2^53 a double point can alias an exact int64 the runtime
    // would print differently — never treat it as a foldable constant,
    // int-flagged or not.
    if (std::abs(iv_.lo) >= kExactIntLimit) return false;
    if (is_int_) {
      if (iv_.lo != std::floor(iv_.lo)) return false;
      *out = Value(static_cast<std::int64_t>(iv_.lo));
      return true;
    }
    *out = Value(iv_.lo);
    return true;
  }
  return false;
}

AbsVal AbsVal::join(const AbsVal& o) const {
  if (kind_ == Kind::kBottom) return o;
  if (o.kind_ == Kind::kBottom) return *this;
  if (kind_ == Kind::kTop || o.kind_ == Kind::kTop) return top();
  if (kind_ == Kind::kConst && o.kind_ == Kind::kConst) {
    if (is_string_ != o.is_string_) return top();
    if (is_string_) return cstr_ == o.cstr_ ? *this : top();
    return cbool_ == o.cbool_ ? *this : top();
  }
  if (kind_ == Kind::kNum && o.kind_ == Kind::kNum) {
    AbsVal v;
    v.kind_ = Kind::kNum;
    v.iv_ = {std::min(iv_.lo, o.iv_.lo), std::max(iv_.hi, o.iv_.hi)};
    v.is_int_ = is_int_ && o.is_int_;
    return v;
  }
  return top();
}

bool AbsVal::leq(const AbsVal& o) const {
  if (kind_ == Kind::kBottom || o.kind_ == Kind::kTop) return true;
  if (o.kind_ == Kind::kBottom || kind_ == Kind::kTop) return false;
  if (kind_ == Kind::kConst && o.kind_ == Kind::kConst)
    return same(o);
  if (kind_ == Kind::kNum && o.kind_ == Kind::kNum)
    return iv_.lo >= o.iv_.lo && iv_.hi <= o.iv_.hi &&
           (o.is_int_ ? is_int_ : true);
  return false;
}

AbsVal AbsVal::meet(const AbsVal& o) const {
  if (o.leq(*this)) return o;
  return *this;
}

AbsVal AbsVal::widen(const AbsVal& next) const {
  if (kind_ == Kind::kBottom) return next;
  if (next.leq(*this)) return *this;
  if (kind_ == Kind::kNum && next.kind_ == Kind::kNum) {
    AbsVal v;
    v.kind_ = Kind::kNum;
    v.is_int_ = is_int_ && next.is_int_;
    v.iv_.lo = next.iv_.lo < iv_.lo ? widen_lo(next.iv_.lo) : iv_.lo;
    v.iv_.hi = next.iv_.hi > iv_.hi ? widen_hi(next.iv_.hi) : iv_.hi;
    return v;
  }
  return top();
}

bool AbsVal::same(const AbsVal& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kBottom:
    case Kind::kTop:
      return true;
    case Kind::kConst:
      if (is_string_ != o.is_string_) return false;
      return is_string_ ? cstr_ == o.cstr_ : cbool_ == o.cbool_;
    case Kind::kNum:
      return iv_.lo == o.iv_.lo && iv_.hi == o.iv_.hi &&
             is_int_ == o.is_int_;
  }
  return false;
}

bool AbsVal::admits(const Value& v) const {
  switch (kind_) {
    case Kind::kTop:
      return true;
    case Kind::kBottom:
      return false;
    case Kind::kConst:
      if (is_string_) return v.is_string() && v.as_string() == cstr_;
      return v.is_bool() && v.as_bool() == cbool_;
    case Kind::kNum: {
      if (is_int_ && !v.is_int()) return false;
      if (!v.is_numeric()) return false;
      double d = v.as_float();
      return d >= iv_.lo && d <= iv_.hi;
    }
  }
  return false;
}

std::string AbsVal::to_string() const {
  switch (kind_) {
    case Kind::kBottom:
      return "bot";
    case Kind::kTop:
      return "top";
    case Kind::kConst:
      return is_string_ ? "\"" + cstr_ + "\"" : (cbool_ ? "true" : "false");
    case Kind::kNum:
      return std::string(is_int_ ? "int" : "num") + iv_.to_string();
  }
  return "?";
}

// --- Purity -----------------------------------------------------------------

bool expr_is_pure(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kVarRef:
      return true;
    case Expr::Kind::kBinary:
    case Expr::Kind::kNot:
    case Expr::Kind::kFieldAccess:
      break;
    case Expr::Kind::kCall:
      if (e.name != "min" && e.name != "max" && e.name != "abs") return false;
      break;
    default:
      return false;
  }
  for (const auto& a : e.args)
    if (a && !expr_is_pure(*a)) return false;
  return true;
}

namespace {

// --- Abstract environments --------------------------------------------------

// Scope stack by value; function-call scopes carry a barrier so lookups
// skip caller locals and land on the machine registers (scope 0), exactly
// like the interpreter chains function envs onto the root env.
struct Scope {
  std::map<std::string, AbsVal> vars;
  bool fn_barrier = false;
};

struct AEnv {
  std::vector<Scope> scopes;

  AbsVal* find(const std::string& n) {
    for (int i = static_cast<int>(scopes.size()) - 1; i >= 0; --i) {
      auto it = scopes[i].vars.find(n);
      if (it != scopes[i].vars.end()) return &it->second;
      if (scopes[i].fn_barrier && i > 0) {
        auto jt = scopes[0].vars.find(n);
        return jt != scopes[0].vars.end() ? &jt->second : nullptr;
      }
    }
    return nullptr;
  }
  void define(const std::string& n, AbsVal v) {
    scopes.back().vars[n] = std::move(v);
  }
  void assign(const std::string& n, AbsVal v) {
    if (AbsVal* slot = find(n))
      *slot = std::move(v);
    else
      define(n, std::move(v));
  }
  void havoc_machine() {
    for (auto& [k, v] : scopes[0].vars) v = AbsVal::top();
  }
};

void join_maps(std::map<std::string, AbsVal>& into,
               const std::map<std::string, AbsVal>& from) {
  for (const auto& [k, v] : from) {
    auto it = into.find(k);
    if (it == into.end())
      into.emplace(k, v);
    else
      it->second = it->second.join(v);
  }
}

AEnv join_envs(const AEnv& a, const AEnv& b) {
  AEnv out = a;
  for (std::size_t i = 0; i < out.scopes.size() && i < b.scopes.size(); ++i)
    join_maps(out.scopes[i].vars, b.scopes[i].vars);
  return out;
}

bool env_same(const AEnv& a, const AEnv& b) {
  if (a.scopes.size() != b.scopes.size()) return false;
  for (std::size_t i = 0; i < a.scopes.size(); ++i) {
    const auto& x = a.scopes[i].vars;
    const auto& y = b.scopes[i].vars;
    if (x.size() != y.size()) return false;
    auto it = x.begin();
    auto jt = y.begin();
    for (; it != x.end(); ++it, ++jt)
      if (it->first != jt->first || !it->second.same(jt->second)) return false;
  }
  return true;
}

AEnv widen_envs(const AEnv& cur, const AEnv& next) {
  AEnv out = cur;
  for (std::size_t i = 0; i < out.scopes.size() && i < next.scopes.size();
       ++i) {
    for (const auto& [k, v] : next.scopes[i].vars) {
      auto it = out.scopes[i].vars.find(k);
      if (it == out.scopes[i].vars.end())
        out.scopes[i].vars.emplace(k, v);
      else
        it->second = it->second.widen(v);
    }
  }
  return out;
}

// --- Interval arithmetic helpers --------------------------------------------

double mul_bound(double a, double b) {
  if (a == 0 || b == 0) return 0;
  return a * b;
}

Interval iv_add(Interval a, Interval b) { return {a.lo + b.lo, a.hi + b.hi}; }
Interval iv_sub(Interval a, Interval b) { return {a.lo - b.hi, a.hi - b.lo}; }
Interval iv_mul(Interval a, Interval b) {
  double c[4] = {mul_bound(a.lo, b.lo), mul_bound(a.lo, b.hi),
                 mul_bound(a.hi, b.lo), mul_bound(a.hi, b.hi)};
  Interval r{c[0], c[0]};
  for (double v : c) {
    if (std::isnan(v)) return Interval::top();
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  return r;
}
// Divisor interval must not contain zero.
Interval iv_div(Interval a, Interval b) {
  double c[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  Interval r{c[0], c[0]};
  for (double v : c) {
    if (std::isnan(v)) return Interval::top();
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  return r;
}

struct FnCtx {
  AbsVal ret = AbsVal::bottom();
  bool may_fallthrough = false;
};

struct ExecFlags {
  bool definitely_returned = false;
};

// --- The engine -------------------------------------------------------------

class Engine {
 public:
  Engine(const CompiledMachine& m, const AbsintOptions& opts, Analysis& out)
      : m_(m), opts_(opts), out_(out) {}

  void run() {
    AEnv env0 = initial_env();
    in_[m_.initial_state] = env0.scopes[0].vars;
    std::deque<std::string> wl{m_.initial_state};
    std::set<std::string> queued{m_.initial_state};

    while (!wl.empty()) {
      std::string s = wl.front();
      wl.pop_front();
      queued.erase(s);
      const CompiledState* cs = m_.state(s);
      if (!cs) continue;
      for (const auto* ev : cs->events) {
        if (++out_.iterations > opts_.iteration_cap) {
          out_.hit_cap = true;
          return;
        }
        std::map<std::string, AbsVal> self;
        std::map<std::string, AbsVal> transit;
        std::set<std::string> targets;
        bool dynamic = false;
        run_handler(*ev, in_[s], self, transit, targets, dynamic);
        // What a transit target sees is the env at the point the pending
        // transit is applied — any prefix of the handler after the transit
        // statement (the run may be cut short by an EvalError) — pushed
        // through the old state's exit handlers.
        std::map<std::string, AbsVal> exited;
        if (dynamic || !targets.empty()) exited = push_exit(*cs, transit);
        auto contribute = [&](const std::string& t,
                              const std::map<std::string, AbsVal>& result) {
          auto it = in_.find(t);
          bool changed = false;
          if (it == in_.end()) {
            in_[t] = result;
            changed = true;
          } else {
            std::map<std::string, AbsVal> joined = it->second;
            join_maps(joined, result);
            int jc = ++join_count_[t];
            if (jc > opts_.widen_after) {
              for (auto& [k, v] : joined) {
                auto old = it->second.find(k);
                if (old != it->second.end()) {
                  AbsVal w = old->second.widen(v);
                  if (!w.same(v)) ++out_.widen_applications;
                  v = std::move(w);
                }
              }
            }
            changed = !maps_same(it->second, joined);
            if (changed) it->second = std::move(joined);
          }
          if (changed && queued.insert(t).second) wl.push_back(t);
        };
        contribute(s, self);
        // A self-transit is consumed without running exit/enter handlers,
        // so the self contribution already covers it.
        if (dynamic) {
          for (const auto& st : m_.states)
            if (st.name != s) contribute(st.name, exited);
        } else {
          for (const auto& t : targets)
            if (t != s) contribute(t, exited);
        }
      }
    }

    // One narrowing sweep: recompute F(fixpoint) without widening and keep
    // the tighter comparable bound per register.
    std::map<std::string, std::map<std::string, AbsVal>> narrow;
    narrow[m_.initial_state] = env0.scopes[0].vars;
    for (auto& [s, entry] : in_) {
      const CompiledState* cs = m_.state(s);
      if (!cs) continue;
      for (const auto* ev : cs->events) {
        if (++out_.iterations > opts_.iteration_cap) {
          out_.hit_cap = true;
          return;
        }
        std::map<std::string, AbsVal> self;
        std::map<std::string, AbsVal> transit;
        std::set<std::string> targets;
        bool dynamic = false;
        run_handler(*ev, entry, self, transit, targets, dynamic);
        std::map<std::string, AbsVal> exited;
        if (dynamic || !targets.empty()) exited = push_exit(*cs, transit);
        auto land = [&](const std::string& t,
                        const std::map<std::string, AbsVal>& result) {
          auto it = narrow.find(t);
          if (it == narrow.end())
            narrow[t] = result;
          else
            join_maps(it->second, result);
        };
        land(s, self);
        if (dynamic) {
          for (const auto& st : m_.states)
            if (st.name != s) land(st.name, exited);
        } else {
          for (const auto& t : targets)
            if (t != s) land(t, exited);
        }
      }
    }
    for (auto& [s, entry] : in_) {
      auto it = narrow.find(s);
      if (it == narrow.end()) continue;
      for (auto& [k, v] : entry) {
        auto jt = it->second.find(k);
        if (jt != it->second.end()) v = v.meet(jt->second);
      }
    }

    // Final fact-collection pass over the narrowed environments.
    recording_ = true;
    for (const auto& st : m_.states) {
      auto it = in_.find(st.name);
      if (it == in_.end()) continue;
      for (const auto* ev : st.events) {
        std::map<std::string, AbsVal> self;
        std::map<std::string, AbsVal> transit;
        std::set<std::string> targets;
        bool dynamic = false;
        run_handler(*ev, it->second, self, transit, targets, dynamic);
      }
    }

    for (auto& [s, entry] : in_) {
      out_.reachable_states.insert(s);
      out_.state_entry[s] = entry;
    }
    for (const Expr* e : overflow_seen_) {
      if (overflow_refuted_.count(e)) continue;
      out_.overflow_nodes.insert(e);
      auto it = overflow_ranges_.find(e);
      if (it != overflow_ranges_.end()) out_.overflow_ranges.emplace(e, it->second);
    }
    for (const Expr* e : divzero_seen_)
      if (!divzero_refuted_.count(e)) out_.div_by_zero_nodes.insert(e);
    for (auto& [a, trips] : loop_trips_)
      if (!loop_unbounded_.count(a)) out_.loop_bounds[a] = trips;
  }

 private:
  static bool maps_same(const std::map<std::string, AbsVal>& a,
                        const std::map<std::string, AbsVal>& b) {
    if (a.size() != b.size()) return false;
    auto it = a.begin();
    auto jt = b.begin();
    for (; it != a.end(); ++it, ++jt)
      if (it->first != jt->first || !it->second.same(jt->second)) return false;
    return true;
  }

  AEnv initial_env() {
    AEnv env;
    env.scopes.emplace_back();
    for (const auto* v : m_.vars) {
      if (v->trigger) {
        env.define(v->name, AbsVal::top());
        continue;
      }
      if (v->external) {
        auto it = opts_.externals.find(v->name);
        env.define(v->name,
                   it != opts_.externals.end() ? AbsVal::of_value(it->second)
                                               : AbsVal::top());
        continue;
      }
      AbsVal init = AbsVal::of_value(Interpreter::default_value(v->type));
      if (v->init) init = eval(*v->init, env);
      env.define(v->name, std::move(init));
    }
    return env;
  }

  // Runs one handler abstractly. `self` receives the join of the machine
  // scope at *every* statement boundary — a handler may be cut short at any
  // point by an EvalError (caught by the runtime, leaving the mutations made
  // so far in place), so the residency contribution must cover every prefix
  // of the run, not just the final env. `transit` receives the same joins
  // restricted to points at or after the first recorded transit: the env a
  // pending transit is applied with is some such prefix.
  void run_handler(const EventDecl& ev,
                   const std::map<std::string, AbsVal>& entry,
                   std::map<std::string, AbsVal>& self,
                   std::map<std::string, AbsVal>& transit,
                   std::set<std::string>& targets, bool& dynamic) {
    AEnv env;
    env.scopes.emplace_back();
    env.scopes[0].vars = entry;
    env.scopes.emplace_back();
    if (ev.kind == EventDecl::TriggerKind::kVarTrigger && !ev.as_var.empty())
      env.define(ev.as_var, AbsVal::top());
    if (ev.kind == EventDecl::TriggerKind::kRecv && !ev.recv_var.empty())
      env.define(ev.recv_var, AbsVal::top());
    cur_targets_ = &targets;
    cur_dynamic_ = &dynamic;
    acc_self_ = &self;
    acc_transit_ = &transit;
    transit_seen_ = false;
    ExecFlags fl;
    exec(ev.actions, env, nullptr, fl);
    accumulate(env);  // final env; also covers the zero-action handler
    cur_targets_ = nullptr;
    cur_dynamic_ = nullptr;
    acc_self_ = nullptr;
    acc_transit_ = nullptr;
    transit_seen_ = false;
  }

  // Pushes a transit contribution through the exit handlers of the state
  // being left, mirroring the runtime's apply_pending_transit: each exit
  // handler runs in turn (possibly cut short by a caught EvalError), so the
  // accumulator both seeds the next handler and absorbs every intermediate
  // env. Transit edges recorded *inside* exit handlers are not collected
  // here — the worklist runs exit events independently from in_[s] (which
  // contains every env this push starts from) and picks them up there.
  std::map<std::string, AbsVal> push_exit(const CompiledState& cs,
                                          std::map<std::string, AbsVal> acc) {
    for (const auto* ev : cs.events) {
      if (ev->kind != EventDecl::TriggerKind::kExit) continue;
      AEnv env;
      env.scopes.emplace_back();
      env.scopes[0].vars = acc;
      env.scopes.emplace_back();
      auto* saved_self = acc_self_;
      auto* saved_transit = acc_transit_;
      bool saved_seen = transit_seen_;
      auto* saved_targets = cur_targets_;
      auto* saved_dynamic = cur_dynamic_;
      acc_self_ = &acc;
      acc_transit_ = nullptr;
      transit_seen_ = false;
      cur_targets_ = nullptr;
      cur_dynamic_ = nullptr;
      ExecFlags fl;
      exec(ev->actions, env, nullptr, fl);
      accumulate(env);
      acc_self_ = saved_self;
      acc_transit_ = saved_transit;
      transit_seen_ = saved_seen;
      cur_targets_ = saved_targets;
      cur_dynamic_ = saved_dynamic;
    }
    return acc;
  }

  void accumulate(const AEnv& env) {
    if (!acc_self_ || env.scopes.empty()) return;
    join_maps(*acc_self_, env.scopes[0].vars);
    if (transit_seen_ && acc_transit_)
      join_maps(*acc_transit_, env.scopes[0].vars);
  }

  // --- statements -----------------------------------------------------------

  ExecFlags exec(const std::vector<ActionPtr>& actions, AEnv& env, FnCtx* fn,
                 ExecFlags& flags) {
    for (const auto& ap : actions) {
      if (!ap) continue;
      const Action& a = *ap;
      switch (a.kind) {
        case Action::Kind::kDeclare: {
          AbsVal v = a.expr
                         ? eval(*a.expr, env)
                         : AbsVal::of_value(Interpreter::default_value(
                               a.decl_type));
          env.define(a.target, std::move(v));
          break;
        }
        case Action::Kind::kAssign:
          env.assign(a.target, a.expr ? eval(*a.expr, env) : AbsVal::top());
          break;
        case Action::Kind::kIf:
          exec_if(a, env, fn, flags);
          break;
        case Action::Kind::kWhile:
          exec_while(a, env, fn, flags);
          break;
        case Action::Kind::kTransit:
          exec_transit(a, env);
          break;
        case Action::Kind::kSend:
          if (a.expr) eval(*a.expr, env);
          if (a.to_dst) eval(*a.to_dst, env);
          break;
        case Action::Kind::kReturn: {
          AbsVal v = a.expr ? eval(*a.expr, env) : AbsVal::top();
          if (fn) fn->ret = fn->ret.join(v);
          flags.definitely_returned = true;
          return flags;
        }
        case Action::Kind::kExprStmt:
          if (a.expr) eval(*a.expr, env);
          break;
      }
      // Prefix-env accumulation: any later statement may throw at runtime,
      // freezing the machine scope as of this point (see run_handler).
      accumulate(env);
      if (flags.definitely_returned) return flags;
    }
    return flags;
  }

  void exec_if(const Action& a, AEnv& env, FnCtx* fn, ExecFlags& flags) {
    AbsVal c = a.expr ? eval(*a.expr, env) : AbsVal::top();
    if (c.is_const_bool()) {
      const auto& branch = c.const_bool() ? a.body : a.else_body;
      env.scopes.emplace_back();
      exec(branch, env, fn, flags);
      env.scopes.pop_back();
      return;
    }
    AEnv then_env = env;
    then_env.scopes.emplace_back();
    ExecFlags tf;
    exec(a.body, then_env, fn, tf);
    then_env.scopes.pop_back();
    AEnv else_env = env;
    else_env.scopes.emplace_back();
    ExecFlags ef;
    exec(a.else_body, else_env, fn, ef);
    else_env.scopes.pop_back();
    env = join_envs(then_env, else_env);
    if (tf.definitely_returned && ef.definitely_returned)
      flags.definitely_returned = true;
  }

  // A while body may run zero times, so it can never make the enclosing
  // block definitely-returned — the flags stay untouched.
  void exec_while(const Action& a, AEnv& env, FnCtx* fn, ExecFlags& /*flags*/) {
    // Entry facts for the counting-loop trip bound, before the loop widens
    // the counter.
    double entry_lo = kInf;
    double bound_hi = -kInf;
    bool entry_ok = false;
    if (recording_) entry_ok = loop_entry_facts(a, env, &entry_lo, &bound_hi);

    AEnv inv = env;
    int it = 0;
    while (true) {
      AbsVal c = a.expr ? eval(*a.expr, inv) : AbsVal::top();
      if (c.is_const_bool() && !c.const_bool()) break;
      AEnv body_env = inv;
      body_env.scopes.emplace_back();
      ExecFlags bf;
      exec(a.body, body_env, fn, bf);
      body_env.scopes.pop_back();
      AEnv next = join_envs(inv, body_env);
      if (env_same(next, inv)) break;
      ++it;
      if (it >= opts_.widen_after) {
        ++out_.widen_applications;
        inv = widen_envs(inv, next);
      } else {
        inv = std::move(next);
      }
      if (it > 256) {  // belt over the threshold ladder: havoc and stop
        for (auto& sc : inv.scopes)
          for (auto& [k, v] : sc.vars) v = AbsVal::top();
        if (a.expr) eval(*a.expr, inv);
        AEnv body2 = inv;
        body2.scopes.emplace_back();
        ExecFlags bf2;
        exec(a.body, body2, fn, bf2);
        body2.scopes.pop_back();
        break;
      }
    }
    env = std::move(inv);

    if (recording_) {
      if (entry_ok) {
        double step = counting_step(a);
        if (step > 0 && std::isfinite(entry_lo) && std::isfinite(bound_hi)) {
          double span = bound_hi - entry_lo;
          if (a.expr->op == BinOp::kLe) span += 1;
          double trips = span <= 0 ? 0 : std::ceil(span / step);
          if (trips >= 0 && trips < 1e15) {
            auto key = &a;
            auto itb = loop_trips_.find(key);
            std::int64_t t = static_cast<std::int64_t>(trips);
            if (itb == loop_trips_.end())
              loop_trips_[key] = t;
            else
              itb->second = std::max(itb->second, t);
            return;
          }
        }
      }
      loop_unbounded_.insert(&a);
    }
  }

  // Checks the canonical counting-loop shape `while (i < E)` / `i <= E`:
  //   - i is a plain variable, only ever advanced by `i = i + c` (or
  //     `i = c + i`) with a positive integer literal c inside the body and
  //     any user function the body calls;
  //   - E is loop-invariant: built from literals, variables the closure
  //     never assigns, min/max/abs, and stats_size/list_size of variables
  //     the closure neither assigns nor mutates;
  //   - i's entry lower bound and E's entry upper bound are finite.
  bool loop_entry_facts(const Action& a, AEnv& env, double* entry_lo,
                        double* bound_hi) {
    if (!a.expr || a.expr->kind != Expr::Kind::kBinary) return false;
    if (a.expr->op != BinOp::kLt && a.expr->op != BinOp::kLe) return false;
    const Expr& lhs = *a.expr->args[0];
    const Expr& rhs = *a.expr->args[1];
    if (lhs.kind != Expr::Kind::kVarRef) return false;
    const std::string& i = lhs.name;

    std::set<std::string> assigned;
    std::set<std::string> mutated_lists;
    if (!closure_writes(a.body, assigned, mutated_lists)) return false;
    if (!bound_invariant(rhs, assigned, mutated_lists)) return false;

    AbsVal iv = AbsVal::top();
    if (AbsVal* slot = env.find(i)) iv = *slot;
    if (!iv.is_int() || !std::isfinite(iv.interval().lo)) return false;
    AbsVal bv = eval_quiet(rhs, env);
    if (!bv.is_num() || !std::isfinite(bv.interval().hi)) return false;
    *entry_lo = iv.interval().lo;
    *bound_hi = bv.interval().hi;
    return true;
  }

  // Step of the counting variable: the minimum positive literal increment,
  // 0 when any write to it is not of the `i = i + c` shape.
  double counting_step(const Action& a) {
    const std::string& i = a.expr->args[0]->name;
    double step = kInf;
    bool ok = true;
    bool saw = false;
    std::vector<const std::vector<ActionPtr>*> bodies{&a.body};
    std::set<std::string> fns;
    collect_called_functions(a.body, fns);
    for (const auto& f : fns)
      if (const FuncDecl* fd = m_.program->function(f))
        bodies.push_back(&fd->body);
    for (const auto* body : bodies) {
      walk_actions(*body, [&](const Action& x) {
        if (x.kind == Action::Kind::kDeclare && x.target == i) ok = false;
        if (x.kind != Action::Kind::kAssign || x.target != i) return;
        saw = true;
        const Expr* e = x.expr.get();
        if (!e || e->kind != Expr::Kind::kBinary || e->op != BinOp::kAdd) {
          ok = false;
          return;
        }
        const Expr* va = e->args[0].get();
        const Expr* cb = e->args[1].get();
        if (!(va && va->kind == Expr::Kind::kVarRef && va->name == i))
          std::swap(va, cb);
        if (!(va && va->kind == Expr::Kind::kVarRef && va->name == i) ||
            !(cb && cb->kind == Expr::Kind::kLiteral && cb->literal.is_int() &&
              cb->literal.as_int() > 0)) {
          ok = false;
          return;
        }
        step = std::min(step, static_cast<double>(cb->literal.as_int()));
      });
    }
    return (ok && saw && std::isfinite(step)) ? step : 0;
  }

  // Names assigned (and lists mutated) by the body plus every user function
  // it can call. False when the closure is not syntactically traceable.
  bool closure_writes(const std::vector<ActionPtr>& body,
                      std::set<std::string>& assigned,
                      std::set<std::string>& mutated) {
    std::vector<const std::vector<ActionPtr>*> bodies{&body};
    std::set<std::string> fns;
    collect_called_functions(body, fns);
    for (const auto& f : fns) {
      const FuncDecl* fd = m_.program->function(f);
      if (!fd) continue;  // builtin-shadowed or unknown: no writes
      bodies.push_back(&fd->body);
    }
    for (const auto* b : bodies) {
      walk_actions(*b, [&](const Action& x) {
        if (x.kind == Action::Kind::kAssign ||
            x.kind == Action::Kind::kDeclare)
          assigned.insert(x.target);
        walk_action_exprs(x, [&](const Expr& e) {
          if (e.kind != Expr::Kind::kCall) return;
          if ((e.name == "list_append" || e.name == "list_set" ||
               e.name == "list_clear" || e.name == "cms_add" ||
               e.name == "cms_clear" || e.name == "mg_add" ||
               e.name == "mg_clear" || e.name == "hll_add" ||
               e.name == "hll_clear") &&
              !e.args.empty() && e.args[0] &&
              e.args[0]->kind == Expr::Kind::kVarRef)
            mutated.insert(e.args[0]->name);
        });
      });
    }
    return true;
  }

  bool bound_invariant(const Expr& e, const std::set<std::string>& assigned,
                       const std::set<std::string>& mutated) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return true;
      case Expr::Kind::kVarRef:
        return !assigned.count(e.name);
      case Expr::Kind::kBinary:
        if (e.op != BinOp::kAdd && e.op != BinOp::kSub && e.op != BinOp::kMul)
          return false;
        break;
      case Expr::Kind::kCall:
        if (e.name == "min" || e.name == "max" || e.name == "abs") break;
        if ((e.name == "stats_size" || e.name == "list_size") &&
            e.args.size() == 1 && e.args[0] &&
            e.args[0]->kind == Expr::Kind::kVarRef) {
          const std::string& v = e.args[0]->name;
          return !assigned.count(v) && !mutated.count(v);
        }
        return false;
      default:
        return false;
    }
    for (const auto& a : e.args)
      if (a && !bound_invariant(*a, assigned, mutated)) return false;
    return true;
  }

  void collect_called_functions(const std::vector<ActionPtr>& body,
                                std::set<std::string>& out) {
    for (const auto& f : reachable_functions(*m_.program, body))
      out.insert(f);
  }

  void exec_transit(const Action& a, AEnv& env) {
    if (!a.expr) return;
    if (a.expr->kind == Expr::Kind::kVarRef && m_.state(a.expr->name)) {
      if (cur_targets_) cur_targets_->insert(a.expr->name);
      transit_seen_ = true;
      return;
    }
    AbsVal v = eval(*a.expr, env);
    if (v.is_const_string() && m_.state(v.const_string())) {
      if (cur_targets_) cur_targets_->insert(v.const_string());
      transit_seen_ = true;
      return;
    }
    if (v.is_const_string()) return;  // unknown state: runtime error, no edge
    if (cur_dynamic_) *cur_dynamic_ = true;
    transit_seen_ = true;
  }

  // --- expressions ----------------------------------------------------------

  void record(const Expr& e, const AbsVal& v) {
    if (!recording_) return;
    auto it = out_.expr_facts.find(&e);
    if (it == out_.expr_facts.end())
      out_.expr_facts.emplace(&e, v);
    else
      it->second = it->second.join(v);
  }

  // Evaluation without fact recording (loop-entry bound probing).
  AbsVal eval_quiet(const Expr& e, AEnv& env) {
    bool saved = recording_;
    recording_ = false;
    AbsVal v = eval(e, env);
    recording_ = saved;
    return v;
  }

  AbsVal eval(const Expr& e, AEnv& env) {
    AbsVal v = eval_inner(e, env);
    record(e, v);
    return v;
  }

  AbsVal eval_inner(const Expr& e, AEnv& env) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return AbsVal::of_value(e.literal);
      case Expr::Kind::kVarRef: {
        AbsVal* slot = env.find(e.name);
        return slot ? *slot : AbsVal::top();
      }
      case Expr::Kind::kFieldAccess:
        if (!e.args.empty() && e.args[0]) eval(*e.args[0], env);
        return AbsVal::top();
      case Expr::Kind::kBinary:
        return eval_binary(e, env);
      case Expr::Kind::kNot: {
        AbsVal a = e.args.empty() || !e.args[0] ? AbsVal::top()
                                                : eval(*e.args[0], env);
        if (a.is_const_bool()) return AbsVal::boolean(!a.const_bool());
        return AbsVal::top();
      }
      case Expr::Kind::kCall:
        return eval_call(e, env);
      case Expr::Kind::kFilterAtom:
      case Expr::Kind::kStructInit:
        for (const auto& a : e.args)
          if (a) eval(*a, env);
        return AbsVal::top();
    }
    return AbsVal::top();
  }

  AbsVal eval_binary(const Expr& e, AEnv& env) {
    const Expr* le = e.args.size() > 0 ? e.args[0].get() : nullptr;
    const Expr* re = e.args.size() > 1 ? e.args[1].get() : nullptr;
    if (!le || !re) return AbsVal::top();

    if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
      AbsVal l = eval(*le, env);
      bool stop_on = e.op == BinOp::kOr;  // short-circuit value
      if (l.is_const_bool()) {
        if (l.const_bool() == stop_on) return AbsVal::boolean(stop_on);
        AbsVal r = eval(*re, env);
        if (r.is_const_bool()) return r;
        return AbsVal::top();
      }
      eval(*re, env);
      return AbsVal::top();
    }

    AbsVal l = eval(*le, env);
    AbsVal r = eval(*re, env);

    switch (e.op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
        return eval_arith(e, l, r);
      case BinOp::kDiv:
        return eval_div(e, l, r);
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe:
      case BinOp::kEq:
      case BinOp::kNe:
        return eval_compare(e.op, l, r);
      default:
        return AbsVal::top();
    }
  }

  AbsVal eval_arith(const Expr& e, const AbsVal& l, const AbsVal& r) {
    // String concatenation path of `+`.
    if (e.op == BinOp::kAdd && (l.is_const_string() || r.is_const_string())) {
      Value lv, rv;
      if (l.singleton(&lv) && r.singleton(&rv)) {
        std::string ls = lv.is_string() ? lv.as_string() : lv.to_string();
        std::string rs = rv.is_string() ? rv.as_string() : rv.to_string();
        return AbsVal::string_const(ls + rs);
      }
      return AbsVal::top();
    }
    if (!l.is_num() || !r.is_num()) {
      if (recording_) overflow_refuted_.insert(&e);
      return AbsVal::top();
    }
    Interval raw = e.op == BinOp::kAdd   ? iv_add(l.interval(), r.interval())
                   : e.op == BinOp::kSub ? iv_sub(l.interval(), r.interval())
                                         : iv_mul(l.interval(), r.interval());
    bool both_int = l.is_int() && r.is_int();
    if (both_int) raw = iv_outward(raw);
    if (!both_int) {
      if (recording_) overflow_refuted_.insert(&e);
      return AbsVal::num_float(raw.lo, raw.hi);
    }
    // Checked int arithmetic: a provable overflow always throws; a partial
    // one clamps the surviving values to the representable range.
    bool provable = raw.lo > kOverflowMargin || raw.hi < -kOverflowMargin;
    if (recording_) {
      if (provable) {
        overflow_seen_.insert(&e);
        auto it = overflow_ranges_.find(&e);
        if (it == overflow_ranges_.end())
          overflow_ranges_.emplace(&e, raw);
        else {
          it->second.lo = std::min(it->second.lo, raw.lo);
          it->second.hi = std::max(it->second.hi, raw.hi);
        }
      } else {
        overflow_refuted_.insert(&e);
      }
    }
    if (provable) return AbsVal::bottom();
    return AbsVal::num_int(std::max(raw.lo, kI64Lo), std::min(raw.hi, kI64Hi));
  }

  AbsVal eval_div(const Expr& e, const AbsVal& l, const AbsVal& r) {
    bool zero = r.is_num() && r.interval().lo == 0 && r.interval().hi == 0;
    if (recording_) {
      if (zero)
        divzero_seen_.insert(&e);
      else
        divzero_refuted_.insert(&e);
    }
    if (zero) return AbsVal::bottom();
    if (!l.is_num() || !r.is_num()) return AbsVal::top();
    Value lv, rv;
    if (l.singleton(&lv) && r.singleton(&rv) && lv.is_int() && rv.is_int() &&
        rv.as_int() != 0) {
      std::int64_t a = lv.as_int();
      std::int64_t b = rv.as_int();
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
        return AbsVal::bottom();  // checked interpreter throws
      if (a % b == 0) return AbsVal::num_int(static_cast<double>(a / b),
                                             static_cast<double>(a / b));
      return AbsVal::num_float(static_cast<double>(a) / static_cast<double>(b),
                               static_cast<double>(a) /
                                   static_cast<double>(b));
    }
    if (r.interval().lo <= 0 && r.interval().hi >= 0)
      return AbsVal::num_float(-kInf, kInf);
    Interval q = iv_div(l.interval(), r.interval());
    // Exact int64 divisions (a % b == 0) land on exact integers; the
    // double endpoint quotient rounds to nearest, so widen outward.
    if (l.is_int() && r.is_int()) q = iv_outward(q);
    return AbsVal::num_float(q.lo, q.hi);
  }

  AbsVal eval_compare(BinOp op, const AbsVal& l, const AbsVal& r) {
    Value lv, rv;
    bool ls = l.singleton(&lv);
    bool rs = r.singleton(&rv);
    if (op == BinOp::kEq || op == BinOp::kNe) {
      if (ls && rs) {
        bool eq = lv.equals(rv);
        return AbsVal::boolean(op == BinOp::kEq ? eq : !eq);
      }
      if (l.is_num() && r.is_num()) {
        bool disjoint = l.interval().hi < r.interval().lo ||
                        r.interval().hi < l.interval().lo;
        if (disjoint) return AbsVal::boolean(op == BinOp::kNe);
      }
      if (l.is_const_string() && r.is_const_string())
        return AbsVal::boolean((l.const_string() == r.const_string()) ==
                               (op == BinOp::kEq));
      return AbsVal::top();
    }
    if (l.is_num() && r.is_num()) {
      const Interval& a = l.interval();
      const Interval& b = r.interval();
      switch (op) {
        case BinOp::kLt:
          if (a.hi < b.lo) return AbsVal::boolean(true);
          if (a.lo >= b.hi) return AbsVal::boolean(false);
          break;
        case BinOp::kLe:
          if (a.hi <= b.lo) return AbsVal::boolean(true);
          if (a.lo > b.hi) return AbsVal::boolean(false);
          break;
        case BinOp::kGt:
          if (a.lo > b.hi) return AbsVal::boolean(true);
          if (a.hi <= b.lo) return AbsVal::boolean(false);
          break;
        case BinOp::kGe:
          if (a.lo >= b.hi) return AbsVal::boolean(true);
          if (a.hi < b.lo) return AbsVal::boolean(false);
          break;
        default:
          break;
      }
      return AbsVal::top();
    }
    if (l.is_const_string() && r.is_const_string()) {
      int c = l.const_string().compare(r.const_string());
      switch (op) {
        case BinOp::kLt:
          return AbsVal::boolean(c < 0);
        case BinOp::kLe:
          return AbsVal::boolean(c <= 0);
        case BinOp::kGt:
          return AbsVal::boolean(c > 0);
        case BinOp::kGe:
          return AbsVal::boolean(c >= 0);
        default:
          break;
      }
    }
    return AbsVal::top();
  }

  AbsVal eval_call(const Expr& e, AEnv& env) {
    const std::string& n = e.name;
    std::vector<AbsVal> args;
    args.reserve(e.args.size());
    auto eval_args = [&] {
      for (const auto& a : e.args)
        args.push_back(a ? eval(*a, env) : AbsVal::top());
    };

    if (n == "min" || n == "max") {
      eval_args();
      if (args.empty()) return AbsVal::top();
      bool all_num = true;
      bool all_int = true;
      Interval acc{n == "min" ? kInf : -kInf, n == "min" ? kInf : -kInf};
      bool first = true;
      for (const auto& a : args) {
        if (!a.is_num()) {
          all_num = false;
          break;
        }
        all_int = all_int && a.is_int();
        if (first) {
          acc = a.interval();
          first = false;
        } else if (n == "min") {
          acc = {std::min(acc.lo, a.interval().lo),
                 std::min(acc.hi, a.interval().hi)};
        } else {
          acc = {std::max(acc.lo, a.interval().lo),
                 std::max(acc.hi, a.interval().hi)};
        }
      }
      if (!all_num) return AbsVal::top();
      return all_int ? AbsVal::num_int(acc.lo, acc.hi)
                     : AbsVal::num_float(acc.lo, acc.hi);
    }
    if (n == "abs") {
      eval_args();
      if (args.size() != 1 || !args[0].is_num()) return AbsVal::top();
      const Interval& a = args[0].interval();
      Interval r = a.lo >= 0   ? a
                   : a.hi <= 0 ? Interval{-a.hi, -a.lo}
                               : Interval{0, std::max(-a.lo, a.hi)};
      return args[0].is_int() ? AbsVal::num_int(r.lo, std::min(r.hi, kI64Hi))
                              : AbsVal::num_float(r.lo, r.hi);
    }
    if (n == "stats_size") {
      eval_args();
      return AbsVal::num_int(0, static_cast<double>(opts_.max_ifaces));
    }
    if (n == "list_size") {
      eval_args();
      return AbsVal::num_int(0, kInf);
    }
    if (n == "list_index_of") {
      eval_args();
      return AbsVal::num_int(-1, kInf);
    }
    if (n == "stats_iface" || n == "stats_bytes" || n == "stats_packets" ||
        n == "now_ms" || n == "switch_id" || n == "to_long" ||
        n == "cms_estimate" || n == "mg_estimate" || n == "hll_estimate") {
      eval_args();
      if (n == "to_long" && args.size() == 1 && args[0].is_num()) {
        const Interval& a = args[0].interval();
        double lo = std::isfinite(a.lo) ? std::trunc(a.lo) : a.lo;
        double hi = std::isfinite(a.hi) ? std::trunc(a.hi) : a.hi;
        return AbsVal::num_int(std::max(lo, kI64Lo), std::min(hi, kI64Hi));
      }
      return AbsVal::num_int(-kInf, kInf);
    }
    if (n == "to_float") {
      eval_args();
      if (args.size() == 1 && args[0].is_num())
        return AbsVal::num_float(args[0].interval().lo,
                                 args[0].interval().hi);
      return AbsVal::num_float(-kInf, kInf);
    }
    // Remaining builtins (host calls, containers, sketches, stringifiers)
    // and unknown names: Top. Builtins shadow user functions, so check the
    // user-function table only for names the interpreter does not claim.
    static const std::set<std::string> kOtherBuiltins = {
        "res",          "addTCAMRule", "removeTCAMRule", "getTCAMRule",
        "exec",         "action_drop", "action_rate_limit", "action_count",
        "action_mirror", "list_new",   "is_list_empty",  "list_get",
        "list_append",  "list_clear",  "list_contains",  "list_set",
        "stats_subject", "cms_new",    "cms_add",        "cms_clear",
        "mg_new",       "mg_add",      "mg_hitters",     "mg_clear",
        "hll_new",      "hll_add",     "hll_clear",      "is_nil",
        "to_str",       "iface_filter", "log"};
    if (kOtherBuiltins.count(n)) {
      eval_args();
      return AbsVal::top();
    }

    const FuncDecl* f = m_.program->function(n);
    if (!f) {
      eval_args();
      return AbsVal::top();  // unknown call: runtime error
    }
    eval_args();
    if (inline_depth_ >= opts_.max_inline_depth || inlining_.count(f)) {
      env.havoc_machine();
      return AbsVal::top();
    }
    ++inline_depth_;
    inlining_.insert(f);
    Scope fscope;
    fscope.fn_barrier = true;
    for (std::size_t i = 0; i < f->params.size(); ++i)
      fscope.vars[f->params[i].name] =
          i < args.size() ? args[i] : AbsVal::top();
    env.scopes.push_back(std::move(fscope));
    FnCtx ctx;
    ExecFlags fl;
    exec(f->body, env, &ctx, fl);
    env.scopes.pop_back();
    inlining_.erase(f);
    --inline_depth_;
    if (!fl.definitely_returned) ctx.ret = ctx.ret.join(AbsVal::top());
    return ctx.ret.is_bottom() ? AbsVal::top() : ctx.ret;
  }

  const CompiledMachine& m_;
  const AbsintOptions& opts_;
  Analysis& out_;

  std::map<std::string, std::map<std::string, AbsVal>> in_;
  std::map<std::string, int> join_count_;
  bool recording_ = false;
  std::set<std::string>* cur_targets_ = nullptr;
  bool* cur_dynamic_ = nullptr;
  std::map<std::string, AbsVal>* acc_self_ = nullptr;
  std::map<std::string, AbsVal>* acc_transit_ = nullptr;
  bool transit_seen_ = false;
  int inline_depth_ = 0;
  std::set<const FuncDecl*> inlining_;

  std::set<const Expr*> overflow_seen_;
  std::set<const Expr*> overflow_refuted_;
  std::set<const Expr*> divzero_seen_;
  std::set<const Expr*> divzero_refuted_;
  std::unordered_map<const Action*, std::int64_t> loop_trips_;
  std::set<const Action*> loop_unbounded_;
  std::unordered_map<const Expr*, Interval> overflow_ranges_;
};

// --- Observability (AI005 support) ------------------------------------------

// Name-granular, flow-insensitive: a register is observable when its value
// can reach a condition, transit, send, return, host/builtin call argument,
// filter atom, struct initializer, utility body, place directive, or a
// write to an external/trigger register; assignment edges propagate
// observability from targets back to sources. Conservative toward
// "observable" — AI005 only fires on registers provably outside the set.
void scan_observability(const CompiledMachine& m, Analysis& out) {
  std::map<std::string, std::set<std::string>> rev_edges;  // target -> sources
  std::set<std::string> roots;

  std::function<void(const Expr&, bool)> collect =
      [&](const Expr& e, bool under_call) {
        bool next_under = under_call;
        if (e.kind == Expr::Kind::kCall || e.kind == Expr::Kind::kFilterAtom ||
            e.kind == Expr::Kind::kStructInit)
          next_under = true;
        if (e.kind == Expr::Kind::kVarRef && under_call) roots.insert(e.name);
        for (const auto& a : e.args)
          if (a) collect(*a, next_under);
      };
  auto all_roots = [&](const Expr& e) {
    walk_expr(e, [&](const Expr& x) {
      if (x.kind == Expr::Kind::kVarRef) roots.insert(x.name);
    });
  };
  auto scan_assign = [&](const std::string& target, const Expr* rhs) {
    if (!rhs) return;
    const VarDecl* v = m.var(target);
    if (v && (v->external || v->trigger)) {
      all_roots(*rhs);
      return;
    }
    walk_expr(*rhs, [&](const Expr& x) {
      if (x.kind == Expr::Kind::kVarRef) rev_edges[target].insert(x.name);
    });
    collect(*rhs, false);
  };
  auto scan_body = [&](const std::vector<ActionPtr>& body) {
    walk_actions(body, [&](const Action& a) {
      switch (a.kind) {
        case Action::Kind::kAssign:
          out.assigned_vars.insert(a.target);
          scan_assign(a.target, a.expr.get());
          break;
        case Action::Kind::kDeclare:
          scan_assign(a.target, a.expr.get());
          break;
        case Action::Kind::kIf:
        case Action::Kind::kWhile:
        case Action::Kind::kTransit:
        case Action::Kind::kSend:
        case Action::Kind::kReturn:
        case Action::Kind::kExprStmt:
          if (a.expr) all_roots(*a.expr);
          if (a.to_dst) all_roots(*a.to_dst);
          break;
      }
      walk_action_exprs(a, [&](const Expr& e) {
        if (e.kind == Expr::Kind::kVarRef) out.read_vars.insert(e.name);
      });
    });
  };

  std::unordered_set<const EventDecl*> seen;
  std::unordered_set<std::string> fns;
  for (const auto& s : m.states) {
    for (const auto* ev : s.events) {
      if (!seen.insert(ev).second) continue;
      scan_body(ev->actions);
      for (const auto& f : reachable_functions(*m.program, ev->actions))
        fns.insert(f);
    }
    if (s.util)
      walk_actions(s.util->body, [&](const Action& a) {
        if (a.expr) all_roots(*a.expr);
      });
  }
  for (const auto& f : fns)
    if (const FuncDecl* fd = m.program->function(f)) scan_body(fd->body);
  for (const auto* v : m.vars)
    if (v->init) scan_assign(v->name, v->init.get());
  for (const auto* p : m.places) {
    for (const auto& e : p->switch_ids)
      if (e) all_roots(*e);
    if (p->path_filter) all_roots(*p->path_filter);
    if (p->range_value) all_roots(*p->range_value);
  }

  // Propagate observability backwards through assignment edges.
  std::deque<std::string> wl(roots.begin(), roots.end());
  out.observable_vars = roots;
  while (!wl.empty()) {
    std::string w = wl.front();
    wl.pop_front();
    auto it = rev_edges.find(w);
    if (it == rev_edges.end()) continue;
    for (const auto& src : it->second)
      if (out.observable_vars.insert(src).second) wl.push_back(src);
  }
}

}  // namespace

// --- Entry point ------------------------------------------------------------

Analysis analyze_machine(const CompiledMachine& m, const AbsintOptions& opts) {
  Analysis out;
  Engine eng(m, opts, out);
  eng.run();
  if (out.hit_cap) {
    // Degrade soundly: no facts survive an abandoned fixpoint.
    out.state_entry.clear();
    out.reachable_states.clear();
    for (const auto& s : m.states) out.reachable_states.insert(s.name);
    out.expr_facts.clear();
    out.loop_bounds.clear();
    out.overflow_nodes.clear();
    out.div_by_zero_nodes.clear();
    out.overflow_ranges.clear();
  }
  scan_observability(m, out);
  return out;
}

}  // namespace farm::almanac::verify::absint
