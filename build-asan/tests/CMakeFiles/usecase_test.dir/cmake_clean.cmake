file(REMOVE_RECURSE
  "CMakeFiles/usecase_test.dir/usecase_test.cpp.o"
  "CMakeFiles/usecase_test.dir/usecase_test.cpp.o.d"
  "usecase_test"
  "usecase_test.pdb"
  "usecase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
