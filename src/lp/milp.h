// Branch-and-bound MILP solver over the two-phase simplex.
//
// This is the "commodity solver" of the evaluation (the role Gurobi plays
// in the paper, §VI-D): given the full placement MILP it finds the optimum
// on small instances and degrades to best-incumbent-at-timeout on large
// ones — exactly the behaviour Fig. 7 contrasts with FARM's heuristic.
#pragma once

#include <optional>

#include "lp/model.h"
#include "lp/simplex.h"

namespace farm::lp {

struct MilpOptions {
  double timeout_seconds = 60;
  // Relative optimality gap at which search stops.
  double mip_gap = 1e-6;
  std::uint64_t max_nodes = 5'000'000;
  // Objective of an externally-known feasible solution (e.g. FARM's
  // heuristic). Branch-and-bound prunes every subtree whose relaxation
  // cannot beat it, exactly as if it were an incumbent — the caller keeps
  // the external solution if the search never produces anything better.
  std::optional<double> warm_start_objective;
  LpOptions lp;
};

Solution solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace farm::lp
