#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "lp/revised.h"
#include "telemetry/prof.h"

namespace farm::lp {

namespace {

constexpr double kEps = 1e-9;
constexpr double kPivotEps = 1e-7;

struct Tableau {
  // rows: one per constraint. cols: structural (shifted) + slack +
  // artificial + rhs (last).
  std::vector<std::vector<double>> rows;
  std::vector<int> basis;       // basic variable per row
  std::size_t n_total = 0;      // columns excluding rhs
  std::size_t n_struct = 0;     // structural variables
  std::size_t first_artificial = 0;

  double& rhs(std::size_t i) { return rows[i][n_total]; }
};

class SimplexSolver {
 public:
  SimplexSolver(const Model& model, const LpOptions& opt)
      : model_(model), opt_(opt), start_(std::chrono::steady_clock::now()) {}

  Solution run();

 private:
  bool deadline_hit() {
    // Checked every iteration: one pivot on a large tableau can take tens
    // of milliseconds, so throttled checks would overshoot the budget.
    if (deadline_flag_) return true;
    if (opt_.deadline_seconds == kInf) return false;
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    deadline_flag_ = elapsed > opt_.deadline_seconds;
    return deadline_flag_;
  }

  // Runs simplex iterations on `t` minimizing the objective expressed by
  // reduced-cost row `red` (size n_total+1; last entry = -objective value).
  // `allow` masks columns permitted to enter the basis.
  // Returns kOptimal / kUnbounded / kTimeLimit / kIterationLimit.
  SolveStatus iterate(Tableau& t, std::vector<double>& red,
                      const std::vector<bool>& allow);

  const Model& model_;
  LpOptions opt_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t iterations_ = 0;
  bool deadline_flag_ = false;
};

SolveStatus SimplexSolver::iterate(Tableau& t, std::vector<double>& red,
                                   const std::vector<bool>& allow) {
  const std::size_t m = t.rows.size();
  std::uint64_t stall = 0;
  bool was_bland = false;
  while (true) {
    if (iterations_ >= opt_.max_iterations) return SolveStatus::kIterationLimit;
    if (deadline_hit()) return SolveStatus::kTimeLimit;
    ++iterations_;

    // Entering column: Dantzig rule normally; Bland (first eligible) after
    // a long degenerate stall to guarantee termination.
    bool bland = stall > 2 * (m + t.n_total);
    if (bland && !was_bland) FARM_PROF_COUNT("lp.simplex.bland", 1);
    was_bland = bland;
    int enter = -1;
    double best = -kEps;
    for (std::size_t j = 0; j < t.n_total; ++j) {
      if (!allow[j]) continue;
      if (red[j] < (bland ? -kEps : best)) {
        enter = static_cast<int>(j);
        if (bland) break;
        best = red[j];
      }
    }
    if (enter < 0) return SolveStatus::kOptimal;

    // Ratio test, two passes: first the exact minimum ratio, then the
    // smallest basic-variable index among the rows at that minimum. The
    // old single pass updated best_ratio through an eps window, so chained
    // near-ties could drift it several eps above the true minimum and pick
    // a row whose pivot leaves a slightly negative rhs — and with an
    // approximate tie-break Bland's anti-cycling proof does not apply.
    int leave = -1;
    double best_ratio = 0;
    for (std::size_t i = 0; i < m; ++i) {
      double a = t.rows[i][static_cast<std::size_t>(enter)];
      if (a <= kPivotEps) continue;
      double ratio = t.rhs(i) / a;
      if (leave < 0 || ratio < best_ratio) {
        leave = static_cast<int>(i);
        best_ratio = ratio;
      }
    }
    if (leave < 0) return SolveStatus::kUnbounded;
    // Bland mode needs exact ties for termination; Dantzig mode keeps the
    // historical eps window, now anchored at the true minimum (bounded
    // error instead of chained drift).
    double tie_tol = bland ? 0.0 : kEps;
    for (std::size_t i = 0; i < m; ++i) {
      double a = t.rows[i][static_cast<std::size_t>(enter)];
      if (a <= kPivotEps) continue;
      double ratio = t.rhs(i) / a;
      if (ratio <= best_ratio + tie_tol &&
          t.basis[i] < t.basis[static_cast<std::size_t>(leave)])
        leave = static_cast<int>(i);
    }
    stall = best_ratio < kEps ? stall + 1 : 0;

    // Pivot.
    FARM_PROF_COUNT("lp.simplex.pivots", 1);
    auto li = static_cast<std::size_t>(leave);
    auto ej = static_cast<std::size_t>(enter);
    auto& prow = t.rows[li];
    double pivot = prow[ej];
    for (double& v : prow) v /= pivot;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == li) continue;
      double f = t.rows[i][ej];
      if (std::abs(f) < kEps) continue;
      auto& row = t.rows[i];
      for (std::size_t j = 0; j <= t.n_total; ++j) row[j] -= f * prow[j];
    }
    double f = red[ej];
    if (std::abs(f) > 0) {
      for (std::size_t j = 0; j <= t.n_total; ++j) red[j] -= f * prow[j];
    }
    t.basis[li] = enter;
  }
}

Solution SimplexSolver::run() {
  Solution sol;
  const auto& vars = model_.vars();
  const auto& cons = model_.constraints();
  const std::size_t n = vars.size();

  // Count rows: one per constraint + one per finite (shifted) upper bound.
  std::vector<double> shift(n), ub(n);
  std::size_t ub_rows = 0;
  for (std::size_t j = 0; j < n; ++j) {
    shift[j] = vars[j].lower;
    ub[j] = vars[j].upper - vars[j].lower;
    if (ub[j] < kInf) ++ub_rows;
  }
  const std::size_t m = cons.size() + ub_rows;

  // Early size guard: row skeletons below are dense (n doubles per row),
  // so an oversized instance must be refused BEFORE densification — the
  // tableau itself can only be larger.
  if (exceeds_cell_budget(m, n, opt_.max_tableau_cells)) {
    sol.status = SolveStatus::kTimeLimit;  // instance too big: solver gives up
    return sol;
  }

  // Row skeletons in (coeffs over structural vars, sense, rhs) form.
  struct Row {
    std::vector<double> a;
    Sense sense;
    double rhs;
  };
  std::vector<Row> raw;
  raw.reserve(m);
  for (const auto& c : cons) {
    Row r{std::vector<double>(n, 0.0), c.sense, c.rhs};
    for (const auto& term : c.terms) {
      FARM_CHECK(term.var >= 0 && static_cast<std::size_t>(term.var) < n);
      r.a[static_cast<std::size_t>(term.var)] += term.coeff;
      r.rhs -= term.coeff * shift[static_cast<std::size_t>(term.var)];
    }
    raw.push_back(std::move(r));
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (ub[j] >= kInf) continue;
    Row r{std::vector<double>(n, 0.0), Sense::kLe, ub[j]};
    r.a[j] = 1;
    raw.push_back(std::move(r));
  }

  // Normalize rhs >= 0.
  for (auto& r : raw) {
    if (r.rhs < 0) {
      for (double& v : r.a) v = -v;
      r.rhs = -r.rhs;
      r.sense = r.sense == Sense::kLe   ? Sense::kGe
                : r.sense == Sense::kGe ? Sense::kLe
                                        : Sense::kEq;
    }
  }

  // Column layout: [structural | slack/surplus | artificial | rhs].
  std::size_t n_slack = 0, n_art = 0;
  for (const auto& r : raw) {
    if (r.sense != Sense::kEq) ++n_slack;
    if (r.sense != Sense::kLe) ++n_art;
  }
  Tableau t;
  t.n_struct = n;
  t.n_total = n + n_slack + n_art;
  t.first_artificial = n + n_slack;

  if (exceeds_cell_budget(raw.size(), t.n_total, opt_.max_tableau_cells)) {
    sol.status = SolveStatus::kTimeLimit;  // instance too big: solver gives up
    return sol;
  }

  t.rows.assign(raw.size(), std::vector<double>(t.n_total + 1, 0.0));
  t.basis.assign(raw.size(), -1);
  std::size_t slack_next = n, art_next = t.first_artificial;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto& row = t.rows[i];
    std::copy(raw[i].a.begin(), raw[i].a.end(), row.begin());
    row[t.n_total] = raw[i].rhs;
    switch (raw[i].sense) {
      case Sense::kLe:
        row[slack_next] = 1;
        t.basis[i] = static_cast<int>(slack_next++);
        break;
      case Sense::kGe:
        row[slack_next] = -1;
        ++slack_next;
        row[art_next] = 1;
        t.basis[i] = static_cast<int>(art_next++);
        break;
      case Sense::kEq:
        row[art_next] = 1;
        t.basis[i] = static_cast<int>(art_next++);
        break;
    }
  }

  std::vector<bool> allow(t.n_total, true);

  // --- Phase 1: minimize sum of artificials -------------------------------
  if (n_art > 0) {
    std::vector<double> red(t.n_total + 1, 0.0);
    // w = Σ artificial = Σ_{rows with basic artificial} (rhs - Σ a_j x_j)
    for (std::size_t i = 0; i < t.rows.size(); ++i) {
      if (static_cast<std::size_t>(t.basis[i]) < t.first_artificial) continue;
      for (std::size_t j = 0; j <= t.n_total; ++j) red[j] -= t.rows[i][j];
    }
    // Reduced costs of basic vars must be 0; artificial columns carry +1.
    for (std::size_t j = t.first_artificial; j < t.n_total; ++j) red[j] += 1;

    SolveStatus st = iterate(t, red, allow);
    sol.simplex_iterations = iterations_;
    if (st == SolveStatus::kTimeLimit || st == SolveStatus::kIterationLimit) {
      sol.status = st;
      return sol;
    }
    double w = -red[t.n_total];
    if (w > 1e-6) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
    // Drive remaining basic artificials out where possible; redundant rows
    // keep a zero-valued artificial which we simply forbid from re-entering.
    for (std::size_t i = 0; i < t.rows.size(); ++i) {
      if (static_cast<std::size_t>(t.basis[i]) < t.first_artificial) continue;
      for (std::size_t j = 0; j < t.first_artificial; ++j) {
        if (std::abs(t.rows[i][j]) > kPivotEps) {
          // Pivot (i, j) manually.
          auto& prow = t.rows[i];
          double pivot = prow[j];
          for (double& v : prow) v /= pivot;
          for (std::size_t k = 0; k < t.rows.size(); ++k) {
            if (k == i) continue;
            double f = t.rows[k][j];
            if (std::abs(f) < kEps) continue;
            for (std::size_t c = 0; c <= t.n_total; ++c)
              t.rows[k][c] -= f * prow[c];
          }
          t.basis[i] = static_cast<int>(j);
          break;
        }
      }
    }
    for (std::size_t j = t.first_artificial; j < t.n_total; ++j)
      allow[j] = false;
  }

  // --- Phase 2: original objective (as minimization) ----------------------
  std::vector<double> cost(t.n_total, 0.0);
  double sign = model_.maximize() ? -1.0 : 1.0;
  for (std::size_t j = 0; j < n; ++j) cost[j] = sign * vars[j].objective;

  std::vector<double> red(t.n_total + 1, 0.0);
  for (std::size_t j = 0; j < t.n_total; ++j) red[j] = cost[j];
  double obj0 = 0;
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    double cb = cost[static_cast<std::size_t>(t.basis[i])];
    if (cb == 0) continue;
    for (std::size_t j = 0; j < t.n_total; ++j) red[j] -= cb * t.rows[i][j];
    obj0 += cb * t.rhs(i);
  }
  red[t.n_total] = -obj0;

  SolveStatus st = iterate(t, red, allow);
  sol.simplex_iterations = iterations_;
  if (st != SolveStatus::kOptimal) {
    sol.status = st;
    return sol;
  }

  // Extract structural values.
  sol.values.assign(n, 0.0);
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    auto b = static_cast<std::size_t>(t.basis[i]);
    if (b < n) sol.values[b] = t.rhs(i);
  }
  double obj = 0;
  for (std::size_t j = 0; j < n; ++j) {
    sol.values[j] += shift[j];
    obj += vars[j].objective * sol.values[j];
  }
  sol.objective = obj;
  sol.status = SolveStatus::kOptimal;
  sol.solve_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  return sol;
}

}  // namespace

// Historically this guard lived twice in this file with two hand-expanded
// formulas — `(n + 1) * m` at the skeleton stage and `(n_total + 1) * m`
// at densification — which could disagree (and silently wrap) near the
// boundary. Every entry point, dense and sparse, now rejects through this
// single predicate.
bool exceeds_cell_budget(std::size_t rows, std::size_t cols_excl_rhs,
                         std::size_t max_cells) {
  if (rows == 0) return false;
  if (cols_excl_rhs == std::numeric_limits<std::size_t>::max()) return true;
  const std::size_t cols = cols_excl_rhs + 1;  // + rhs column
  // rows * cols > max_cells, without the multiply that could overflow.
  return cols > max_cells / rows;
}

Solution solve_lp(const Model& model, const LpOptions& options) {
  FARM_PROF_SCOPE("simplex");
  if (options.algorithm == LpAlgorithm::kRevisedSparse)
    return solve_lp_revised(model, options);
  SimplexSolver solver(model, options);
  return solver.run();
}

}  // namespace farm::lp
