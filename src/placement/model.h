// Seed placement optimization model (§IV).
//
// The problem couples: per-seed candidate switches N^s (from place
// directives), per-seed resource constraints C^s and utilities u^s (from
// util analysis; multiple variants = the paper's seed copies of which at
// most one is placed), polling demand (1/ival linear in the allocation,
// shared per polling subject — the aggregation benefit), migration overhead
// (resources doubled at the source while state transfers), and switch
// capacities. Objective: total monitoring utility (MU).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "almanac/analysis.h"
#include "net/topology.h"

namespace farm::placement {

using almanac::Poly;
using almanac::ResourcesValue;
using almanac::UtilityVariant;

struct PollModel {
  // φ_enc subject key; polls with equal keys on the same switch aggregate.
  std::string subject;
  // 1/ival as a linear polynomial of the seed's allocation.
  Poly inv_ival;
};

struct SeedModel {
  std::string id;    // unique, e.g. "task/machine#3"
  std::string task;  // C1 groups seeds by task
  std::vector<net::NodeId> candidates;  // N^s (non-empty)
  std::vector<UtilityVariant> variants;  // at most one placed
  std::vector<PollModel> polls;
};

struct SwitchModel {
  net::NodeId node = net::kInvalidNode;
  ResourcesValue capacity;  // ares(n, ·); PCIe is the polling capacity
  double alpha_poll = 1.0;  // α_poll(n)
};

struct PlacementProblem {
  std::vector<SeedModel> seeds;
  std::vector<SwitchModel> switches;
  // Current placement plc' and allocation res' (empty on first run).
  std::unordered_map<std::string, net::NodeId> current_placement;
  std::unordered_map<std::string, ResourcesValue> current_alloc;

  const SwitchModel* switch_model(net::NodeId n) const {
    for (const auto& s : switches)
      if (s.node == n) return &s;
    return nullptr;
  }
};

struct PlacementEntry {
  std::string seed;
  net::NodeId node = net::kInvalidNode;
  int variant = 0;
  ResourcesValue alloc;
  double utility = 0;
};

struct PlacementResult {
  std::vector<PlacementEntry> placements;  // unplaced seeds absent
  double total_utility = 0;
  double solve_seconds = 0;
  std::uint64_t lp_solves = 0;     // heuristic diagnostics
  std::uint64_t milp_nodes = 0;    // MILP diagnostics
  bool timed_out = false;

  const PlacementEntry* entry(const std::string& seed) const {
    for (const auto& e : placements)
      if (e.seed == seed) return &e;
    return nullptr;
  }
};

// Checks (C1)-(C4) and recomputes MU; returns error strings (empty = valid).
// `tolerance` absorbs LP round-off.
std::vector<std::string> validate_placement(const PlacementProblem& problem,
                                            const PlacementResult& result,
                                            double tolerance = 1e-6);

// Recomputed MU from entries (trusts allocations, not `utility` fields).
double recompute_utility(const PlacementProblem& problem,
                         const PlacementResult& result);

}  // namespace farm::placement
