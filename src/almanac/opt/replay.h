// Soundness harness for the Winnow optimizer (DESIGN.md §15).
//
// `replay_compare` drives the original and the optimized machine through
// identical randomized event streams on a deterministic in-memory host and
// asserts bit-identical observable behavior: every host effect (TCAM
// install/remove/query, send, exec, log, trigger refresh, transit request),
// every handler error, the resident state after each event, and the
// utility sampled at two allocations must match line for line.
//
// It simultaneously checks the analysis envelope itself: after each event
// settles, every machine register of the *original* run must be admitted
// by `analysis.state_entry[current_state]` — the soundness contract of
// absint.h. Callers must pass the same externals the analysis was run
// with, or the envelope check is meaningless.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "almanac/compile.h"
#include "almanac/value.h"
#include "almanac/verify/absint.h"

namespace farm::almanac::opt {

struct ReplayOptions {
  std::uint64_t seed = 0x5EEDF00Dull;
  int streams = 4;            // independent event streams per comparison
  int events_per_stream = 64; // events delivered per stream
  int max_ifaces = 8;         // polled stats entry cap per snapshot
  // External variable bindings — must mirror AbsintOptions::externals of
  // the analysis being checked.
  std::unordered_map<std::string, Value> externals;
};

struct ReplayReport {
  bool identical = true;    // optimized matched original on every stream
  bool intervals_ok = true; // original stayed inside the analysis envelope
  int events_run = 0;
  // First mismatch, human-readable; empty when both checks pass.
  std::string divergence;

  bool ok() const { return identical && intervals_ok; }
};

ReplayReport replay_compare(const CompiledMachine& original,
                            const CompiledMachine& optimized,
                            const verify::absint::Analysis& analysis,
                            const ReplayOptions& opts = {});

}  // namespace farm::almanac::opt
