file(REMOVE_RECURSE
  "CMakeFiles/farm_baselines.dir/sflow.cpp.o"
  "CMakeFiles/farm_baselines.dir/sflow.cpp.o.d"
  "CMakeFiles/farm_baselines.dir/sonata.cpp.o"
  "CMakeFiles/farm_baselines.dir/sonata.cpp.o.d"
  "libfarm_baselines.a"
  "libfarm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
