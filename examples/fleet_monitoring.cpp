// Fleet monitoring: every Table I use case deployed side-by-side — the
// management scenario the paper's placement optimizer exists for.
//
// Installs all 17 use cases on a 20-switch fabric (the paper's production
// cluster size), replays a mixed workload containing several of the
// anomalies, and prints a per-task summary plus the placement statistics
// (seeds per switch, polling aggregation effect, optimizer runtime).
//
//   $ ./fleet_monitoring
#include <cstdio>
#include <memory>

#include "farm/harvesters.h"
#include "farm/system.h"
#include "farm/usecases.h"
#include "net/traffic.h"

using namespace farm;

int main() {
  core::FarmSystemConfig config;
  config.topology = {.spines = 4, .leaves = 16, .hosts_per_leaf = 4};
  config.switch_config.cpu_cores = 8;
  core::FarmSystem farm(config);
  std::printf("fabric: %zu switches, %zu hosts\n",
              farm.topology().switches().size(),
              farm.topology().hosts().size());

  // One harvester per task.
  std::vector<std::unique_ptr<core::CollectingHarvester>> harvesters;
  std::vector<std::string> names;
  for (const auto& uc : core::all_use_cases()) {
    std::string task = "t" + std::to_string(harvesters.size());
    harvesters.push_back(
        std::make_unique<core::CollectingHarvester>(farm.engine(), task));
    farm.bus().attach_harvester(task, *harvesters.back());
    auto ids = farm.install_task(
        {task, uc.source, uc.machines, uc.default_externals});
    names.push_back(uc.name);
    std::printf("  installed %-22s → %3zu seeds\n", uc.name.c_str(),
                ids.size());
  }
  const auto& placement = farm.seeder().last_placement();
  std::printf("placement: %zu seeds, MU=%.1f, solved in %.3f s (%llu LPs)\n",
              placement.placements.size(), placement.total_utility,
              placement.solve_seconds,
              static_cast<unsigned long long>(placement.lp_solves));

  // Mixed workload: heavy hitters + an SSH brute force + a port scan.
  util::Rng rng(42);
  auto schedule = net::heavy_hitter_workload(farm.topology(), rng, 0.05,
                                             600e6, sim::Duration::sec(30),
                                             sim::Duration::sec(5));
  auto attacker = *farm.topology()
                       .node(farm.fabric().hosts_by_leaf[0][0])
                       .address;
  auto target1 =
      *farm.topology().node(farm.fabric().hosts_by_leaf[8][0]).address;
  schedule.append(net::ssh_brute_force(attacker, target1, 150,
                                       sim::Duration::ms(25),
                                       sim::TimePoint::origin() +
                                           sim::Duration::sec(1)));
  schedule.append(net::port_scan(attacker, target1, 2000, 120, 1e5,
                                 sim::TimePoint::origin() + sim::Duration::sec(2),
                                 sim::Duration::sec(2)));
  farm.load_traffic(std::move(schedule));
  farm.run_for(sim::Duration::sec(5));

  std::printf("\n%-24s %8s\n", "task", "reports");
  std::size_t total_reports = 0;
  for (std::size_t i = 0; i < harvesters.size(); ++i) {
    if (harvesters[i]->count() == 0) continue;
    std::printf("%-24s %8zu\n", names[i].c_str(), harvesters[i]->count());
    total_reports += harvesters[i]->count();
  }

  // Soil-level effectiveness: polling aggregation across co-located tasks.
  std::uint64_t requests = 0, deliveries = 0;
  for (auto n : farm.topology().switches()) {
    requests += farm.soil(n).poll_requests_issued();
    deliveries += farm.soil(n).poll_deliveries();
  }
  std::printf("\npolling: %llu PCIe requests served %llu deliveries "
              "(aggregation factor %.1fx)\n",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(deliveries),
              requests ? static_cast<double>(deliveries) /
                             static_cast<double>(requests)
                       : 0.0);
  std::printf("control-plane upstream: %.2f MB over 5 s for %zu tasks\n",
              farm.bus().upstream().megabytes(), harvesters.size());
  return total_reports > 0 ? 0 : 1;
}
