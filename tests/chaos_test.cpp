// Chaos & fault-injection scenarios: scripted and RNG-seeded fault plans
// driven through the full stack (topology liveness → reroute, switch crash
// → seeder heartbeat detection → re-placement, PCIe loss → poll retry).
// Every scenario must be deterministic: the same plan (or the same RNG
// seed) replays to identical metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "farm/chaos.h"
#include "farm/harvesters.h"
#include "farm/system.h"
#include "net/traffic.h"
#include "sim/fault.h"
#include "sim/sweep.h"
#include "telemetry/hub.h"

namespace farm::core {
namespace {

using almanac::Value;
using sim::Duration;
using sim::TimePoint;

TimePoint at(std::int64_t ms) { return TimePoint::origin() + Duration::ms(ms); }

// A seed placeable on any switch: reports a counter on every port poll.
// Used to observe "reports keep flowing / resume" across faults.
constexpr const char* kReporterAny = R"(
  machine Reporter {
    place any;
    poll portStats = Poll { .ival = 0.05, .what = port ANY };
    long n = 0;
    state s {
      when (portStats as stats) do {
        n = n + 1;
        send n to harvester;
      }
    }
  }
)";

// Same reporter, one seed per switch.
constexpr const char* kReporterAll = R"(
  machine Reporter {
    place all;
    poll portStats = Poll { .ival = 0.05, .what = port ANY };
    long n = 0;
    state s {
      when (portStats as stats) do {
        n = n + 1;
        send n to harvester;
      }
    }
  }
)";

net::NodeId hosting_node(FarmSystem& farm, const runtime::SeedId& id) {
  for (auto n : farm.topology().switches())
    if (farm.soil(n).find(id)) return n;
  return net::kInvalidNode;
}

TEST(ChaosTest, LinkFlapReroutesTrafficAroundDeadLink) {
  FarmSystem farm(FarmSystemConfig{
      .topology = {.spines = 2, .leaves = 2, .hosts_per_leaf = 2}});
  net::NodeId src = farm.fabric().hosts_by_leaf[0][0];
  net::NodeId dst = farm.fabric().hosts_by_leaf[1][0];

  net::FlowSchedule sched;
  net::FlowSpec f;
  f.key = {*farm.topology().node(src).address,
           *farm.topology().node(dst).address, 4000, 80, net::Proto::kTcp};
  f.rate_bps = 200e6;
  sched.add_forever(TimePoint::origin(), f);
  farm.load_traffic(std::move(sched));

  // The spine the flow currently crosses (host-leaf-spine-leaf-host).
  net::Path path = farm.topology().shortest_path(src, dst);
  ASSERT_EQ(path.size(), 5u);
  net::NodeId leaf0 = path[1], used_spine = path[2];

  sim::FaultPlan plan;
  plan.link_flap(at(1000), Duration::sec(1), leaf0, used_spine);
  ChaosController chaos(farm, std::move(plan));
  chaos.arm();

  farm.run_for(Duration::ms(1500));  // mid-outage
  EXPECT_FALSE(farm.topology().link_up(leaf0, used_spine));
  // Path recomputation avoids the dead link: the flow crosses the other
  // spine now.
  net::Path rerouted = farm.topology().shortest_path(src, dst);
  ASSERT_EQ(rerouted.size(), 5u);
  EXPECT_NE(rerouted[2], used_spine);

  // Traffic keeps arriving during the outage (ECMP sibling absorbed it).
  std::uint64_t mid = farm.traffic()->bytes_delivered_to(dst);
  EXPECT_GT(mid, 0u);
  farm.run_for(Duration::ms(400));
  EXPECT_GT(farm.traffic()->bytes_delivered_to(dst), mid);

  farm.run_for(Duration::ms(1100));  // past the up event
  EXPECT_TRUE(farm.topology().link_up(leaf0, used_spine));
  EXPECT_EQ(chaos.injector().injected(), 2u);
  EXPECT_EQ(chaos.injector().injected(sim::FaultKind::kLinkDown), 1u);
  EXPECT_EQ(chaos.injector().injected(sim::FaultKind::kLinkUp), 1u);
}

// The acceptance scenario: a scripted leaf kill mid-task. The heartbeat
// must detect the dead switch, placement must move the seed to a survivor,
// and harvester reports must resume — all deterministically (same scenario
// twice ⇒ identical metrics).
TEST(ChaosTest, LeafCrashDetectedSeedReplacedReportsResume) {
  struct Outcome {
    std::size_t reports_before, reports_total;
    std::uint64_t reseeds, detections;
    double detection_latency;
    std::int64_t first_resume_ns;
    std::uint64_t executed_events, upstream_bytes;
    bool operator==(const Outcome&) const = default;
  };
  auto run = [] {
    FarmSystem farm(FarmSystemConfig{
        .topology = {.spines = 1, .leaves = 2, .hosts_per_leaf = 2}});
    CollectingHarvester harv(farm.engine(), "chaos");
    farm.bus().attach_harvester("chaos", harv);
    auto ids = farm.install_task({"chaos", kReporterAny, {"Reporter"}, {}});
    EXPECT_EQ(ids.size(), 1u);
    net::NodeId victim = hosting_node(farm, ids[0]);
    EXPECT_NE(victim, net::kInvalidNode);

    sim::FaultPlan plan;
    plan.crash(at(1050), victim);
    ChaosController chaos(farm, std::move(plan));
    chaos.arm();

    farm.run_for(Duration::ms(1050));
    std::size_t before = harv.count();
    EXPECT_GT(before, 0u);  // reports flowed pre-crash
    farm.run_for(Duration::ms(2950));

    Seeder& seeder = farm.seeder();
    EXPECT_TRUE(seeder.node_failed(victim));
    EXPECT_EQ(seeder.failed_nodes(), std::vector<net::NodeId>{victim});
    EXPECT_EQ(seeder.detection_latency().count(), 1u);
    // Detection within the heartbeat window: period × (miss_limit + 2)
    // bounds timeout plus tick alignment.
    EXPECT_LE(seeder.detection_latency().max(), 0.25 * 5);
    EXPECT_GE(seeder.reseed_count(), 1u);

    // The seed lives on a survivor now.
    net::NodeId now_at = hosting_node(farm, ids[0]);
    EXPECT_NE(now_at, net::kInvalidNode);
    EXPECT_NE(now_at, victim);

    // Reports resumed within a bounded virtual-time window after the kill:
    // detection (≤ 1.25 s) + redeploy + one poll interval.
    std::int64_t first_resume = -1;
    for (std::size_t i = before; i < harv.times.size(); ++i) {
      if (harv.times[i] > at(1050)) {
        first_resume = harv.times[i].count_ns();
        break;
      }
    }
    EXPECT_NE(first_resume, -1);
    EXPECT_LE(first_resume, at(1050 + 1250 + 500).count_ns());
    EXPECT_GT(harv.count(), before);

    return Outcome{before,
                   harv.count(),
                   seeder.reseed_count(),
                   seeder.detection_latency().count(),
                   seeder.detection_latency().max(),
                   first_resume,
                   farm.engine().executed_events(),
                   farm.bus().upstream().bytes};
  };
  Outcome a = run(), b = run();
  EXPECT_EQ(a, b);  // deterministic replay of the whole scenario
}

TEST(ChaosTest, SpineCrashPartitionsFabricSurvivorsKeepReporting) {
  // One spine: killing it cuts every leaf-leaf path, but the out-of-band
  // management network keeps survivor seeds reporting, and the seeder
  // flags exactly the spine as dead.
  FarmSystem farm(FarmSystemConfig{
      .topology = {.spines = 1, .leaves = 2, .hosts_per_leaf = 2}});
  CollectingHarvester harv(farm.engine(), "chaos");
  farm.bus().attach_harvester("chaos", harv);
  auto ids = farm.install_task({"chaos", kReporterAll, {"Reporter"}, {}});
  ASSERT_EQ(ids.size(), 3u);  // one per switch
  net::NodeId spine = farm.fabric().spine_switches[0];
  auto leaves = farm.fabric().leaf_switches;

  sim::FaultPlan plan;
  plan.crash(at(1000), spine);
  ChaosController chaos(farm, std::move(plan));
  chaos.arm();
  farm.run_for(Duration::sec(3));

  EXPECT_TRUE(farm.seeder().node_failed(spine));
  EXPECT_FALSE(farm.seeder().node_failed(leaves[0]));
  EXPECT_FALSE(farm.seeder().node_failed(leaves[1]));
  // Data-plane partition: no leaf-to-leaf path without the spine.
  EXPECT_TRUE(farm.topology().shortest_path(leaves[0], leaves[1]).empty());

  // The spine's seed is gone (its only candidate died); the leaf seeds
  // survived in place and kept reporting through the partition.
  EXPECT_EQ(farm.seeder().seeds_of_task("chaos").size(), 2u);
  std::size_t late_leaf_reports = 0;
  for (std::size_t i = 0; i < harv.times.size(); ++i)
    if (harv.times[i] > at(2000)) ++late_leaf_reports;
  EXPECT_GT(late_leaf_reports, 0u);
}

TEST(ChaosTest, PollLossBurstTimesOutRetriesAndRecovers) {
  FarmSystem farm(FarmSystemConfig{
      .topology = {.spines = 1, .leaves = 2, .hosts_per_leaf = 2}});
  CollectingHarvester harv(farm.engine(), "chaos");
  farm.bus().attach_harvester("chaos", harv);
  auto ids = farm.install_task({"chaos", kReporterAll, {"Reporter"}, {}});
  ASSERT_FALSE(ids.empty());
  net::NodeId leaf0 = farm.fabric().leaf_switches[0];

  sim::FaultPlan plan;
  plan.poll_loss(at(500), Duration::sec(2), leaf0, 0.5);
  ChaosController chaos(farm, std::move(plan));
  chaos.arm();

  farm.run_for(Duration::ms(2500));  // loss window just ended
  runtime::Soil& soil = farm.soil(leaf0);
  EXPECT_GT(soil.poll_timeouts(), 0u);
  EXPECT_GT(soil.poll_retries(), 0u);
  EXPECT_GT(soil.poll_deliveries(), 0u);  // retries pulled polls through
  EXPECT_EQ(farm.chassis(leaf0).pcie().loss_rate(), 0.0);

  // Clean channel again: deliveries keep advancing, no new timeouts pile
  // up at the loss-free rate. (Let in-flight stragglers from the window
  // drain before snapshotting.)
  farm.run_for(Duration::ms(500));
  std::uint64_t delivered_mid = soil.poll_deliveries();
  std::uint64_t timeouts_mid = soil.poll_timeouts();
  farm.run_for(Duration::ms(1500));
  EXPECT_GT(soil.poll_deliveries(), delivered_mid);
  EXPECT_EQ(soil.poll_timeouts(), timeouts_mid);
  // The switch never counted as failed — polls were lossy, heartbeats fine.
  EXPECT_FALSE(farm.seeder().node_failed(leaf0));
}

TEST(ChaosTest, RandomPlanChaosRunsToCompletionDeterministically) {
  auto run = [](std::uint64_t seed) {
    FarmSystem farm(FarmSystemConfig{
        .topology = {.spines = 2, .leaves = 4, .hosts_per_leaf = 2}});
    CollectingHarvester harv(farm.engine(), "chaos");
    farm.bus().attach_harvester("chaos", harv);
    farm.install_task({"chaos", kReporterAll, {"Reporter"}, {}});

    sim::ChaosSpec spec = ChaosController::default_spec(farm);
    spec.start = at(500);
    spec.end = at(3500);
    spec.incidents = 10;
    sim::FaultPlan plan = sim::random_plan(spec, seed);
    EXPECT_EQ(plan.size(), 20u);  // every incident emits its down+up pair
    ChaosController chaos(farm, std::move(plan));
    chaos.arm();

    util::Rng rng(7);
    farm.load_traffic(net::background_traffic(farm.topology(), rng, 40, 5e6,
                                              Duration::sec(5)));
    farm.run_for(Duration::sec(5));

    std::uint64_t timeouts = 0;
    for (auto* s : farm.soils()) timeouts += s->poll_timeouts();
    return std::make_tuple(
        farm.engine().executed_events(), chaos.injector().injected(),
        harv.count(), farm.bus().upstream().bytes, timeouts,
        farm.seeder().reseed_count(),
        farm.seeder().detection_latency().count(),
        farm.seeder().failed_nodes().size());
  };
  auto a = run(2024), b = run(2024);
  EXPECT_EQ(a, b);
  // All scheduled faults fired.
  EXPECT_EQ(std::get<1>(a), 20u);
  // A different seed yields a genuinely different scenario.
  EXPECT_NE(run(99), a);
}

TEST(ChaosTest, CombineSweepAcrossFaultSeedsMatchesSequential) {
  // The Combine scenario runner fans a chaos sweep (one fault-plan seed
  // per scenario) across threads. Each scenario builds a full FarmSystem —
  // its own engine, topology, telemetry — so nothing is shared; the sweep
  // must be bit-identical to the sequential run.
  auto scenario = [](std::size_t index, sim::Engine&) {
    FarmSystem farm(FarmSystemConfig{
        .topology = {.spines = 2, .leaves = 4, .hosts_per_leaf = 2}});
    CollectingHarvester harv(farm.engine(), "chaos");
    farm.bus().attach_harvester("chaos", harv);
    farm.install_task({"chaos", kReporterAll, {"Reporter"}, {}});

    sim::ChaosSpec spec = ChaosController::default_spec(farm);
    spec.start = at(500);
    spec.end = at(2500);
    spec.incidents = 5;
    ChaosController chaos(farm, sim::random_plan(spec, 1000 + index));
    chaos.arm();

    util::Rng rng(7);
    farm.load_traffic(net::background_traffic(farm.topology(), rng, 20, 5e6,
                                              Duration::sec(3)));
    // Past the plan's end so every incident's recovery event also fires.
    farm.run_for(Duration::sec(5));

    sim::ScenarioMetrics m;
    m.set("executed", static_cast<double>(farm.engine().executed_events()));
    m.set("injected", static_cast<double>(chaos.injector().injected()));
    m.set("reports", static_cast<double>(harv.count()));
    m.set("reseeds", static_cast<double>(farm.seeder().reseed_count()));
    return m;
  };
  auto seq = sim::run_scenarios(4, scenario, {.threads = 1});
  auto par = sim::run_scenarios(4, scenario, {.threads = 4});
  EXPECT_TRUE(seq == par);
  // Distinct fault seeds really produce distinct scenarios…
  EXPECT_NE(seq.runs[0], seq.runs[1]);
  // …and every scenario fired its full plan (5 incidents → 10 events).
  EXPECT_EQ(seq.aggregate().at("injected").min, 10);
}

TEST(ChaosTest, FaultMarksPrecedeSymptomsAndFlightRecorderDumps) {
  if (!telemetry::Hub::compiled_in())
    GTEST_SKIP() << "built with FARM_TELEMETRY=OFF";
  FarmSystem farm(FarmSystemConfig{
      .topology = {.spines = 1, .leaves = 2, .hosts_per_leaf = 2}});
  CollectingHarvester harv(farm.engine(), "chaos");
  farm.bus().attach_harvester("chaos", harv);
  ASSERT_FALSE(farm.install_task({"chaos", kReporterAll, {"Reporter"}, {}})
                   .empty());
  net::NodeId leaf0 = farm.fabric().leaf_switches[0];

  sim::FaultPlan plan;
  plan.poll_loss(at(500), Duration::sec(2), leaf0, 0.9);
  ChaosController chaos(farm, std::move(plan));
  std::string dump = ::testing::TempDir() + "granary_chaos_flight.json";
  chaos.record_flight_to(dump);
  chaos.arm();
  farm.run_for(Duration::ms(3000));

  telemetry::Hub& tel = farm.telemetry();
  // The injected fault shows up as a chaos.<kind> mark carrying its target.
  auto start = tel.query().label("chaos.poll-loss-start").first();
  ASSERT_TRUE(start.has_value());
  EXPECT_EQ(start->at, at(500));
  EXPECT_DOUBLE_EQ(start->value, static_cast<double>(leaf0));

  // Fault → symptom ordering: no poll timed out before the loss window
  // opened, and the first timeout follows the mark in virtual time.
  std::string soil_name = farm.topology().node(leaf0).name;
  auto first_timeout =
      tel.query().label("soil." + soil_name + ".poll_timeouts").first();
  ASSERT_TRUE(first_timeout.has_value());
  EXPECT_GT(first_timeout->at, start->at);

  // Each applied fault rewrote the flight dump; the file on disk is the
  // chrome trace for the *last* fault (the loss window closing).
  EXPECT_EQ(tel.flight().dumps(), 2u);
  std::ifstream in(dump);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.str().find("chaos.poll-loss-stop"), std::string::npos);
  std::remove(dump.c_str());
}

// --- Scarecrow acceptance: fault → alert latency -----------------------------

TEST(ChaosTest, SwitchCrashFiresStalenessAlertAndResolvesAfterReboot) {
  if (!telemetry::Hub::compiled_in())
    GTEST_SKIP() << "built with FARM_TELEMETRY=OFF";
  FarmSystem farm(FarmSystemConfig{
      .topology = {.spines = 1, .leaves = 2, .hosts_per_leaf = 2}});
  CollectingHarvester harv(farm.engine(), "chaos");
  farm.bus().attach_harvester("chaos", harv);
  ASSERT_FALSE(farm.install_task({"chaos", kReporterAll, {"Reporter"}, {}})
                   .empty());
  net::NodeId victim = farm.fabric().leaf_switches[0];
  const std::string metric =
      "soil." + farm.topology().node(victim).name + ".poll_deliveries";

  sim::FaultPlan plan;
  plan.crash_reboot(at(1000), Duration::sec(3), victim);  // back up at 4 s
  ChaosController chaos(farm, std::move(plan));
  chaos.arm();

  farm.run_for(Duration::ms(2500));
  telemetry::Hub& tel = farm.telemetry();
  // The victim's soil went silent: its poll-staleness instance fired, and
  // the transition rode the event store as a mark. Detection latency is
  // bounded: the 1 s staleness threshold, plus one 100 ms evaluation
  // period, plus the sub-threshold slack between the last delivery and the
  // crash instant.
  auto firing = tel.query().label("alert.poll-staleness.firing").first();
  ASSERT_TRUE(firing.has_value());
  EXPECT_GT(firing->at, at(1000 + 800));
  EXPECT_LE(firing->at, at(1000 + 1500));
  const telemetry::Alert* a =
      farm.scarecrow().alerts().find("poll-staleness", metric);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->state, telemetry::AlertState::kFiring);
  // A firing alert plus a dead switch drag the fabric health below 1.
  EXPECT_LT(farm.scarecrow().fabric_score(), 1.0);
  EXPECT_TRUE(farm.scarecrow().alerts().any_firing("soil.**"));

  // Reboot at 4 s: recovery is detected, the place-all reporter returns to
  // the victim, deliveries resume, and the alert resolves.
  farm.run_for(Duration::ms(5500));  // now at 8 s
  a = farm.scarecrow().alerts().find("poll-staleness", metric);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->state, telemetry::AlertState::kResolved);
  auto resolved = tel.query().label("alert.poll-staleness.resolved").first();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_GT(resolved->at, at(4000));
  EXPECT_LE(resolved->at, at(5000));  // ping + redeploy + poll + one eval
  EXPECT_EQ(farm.scarecrow().alerts().firing_count(), 0u);
  EXPECT_DOUBLE_EQ(farm.scarecrow().fabric_score(), 1.0);
}

TEST(ChaosTest, PollLossBurstFiresTimeoutRateAlertAndResolves) {
  if (!telemetry::Hub::compiled_in())
    GTEST_SKIP() << "built with FARM_TELEMETRY=OFF";
  FarmSystem farm(FarmSystemConfig{
      .topology = {.spines = 1, .leaves = 2, .hosts_per_leaf = 2}});
  CollectingHarvester harv(farm.engine(), "chaos");
  farm.bus().attach_harvester("chaos", harv);
  ASSERT_FALSE(farm.install_task({"chaos", kReporterAll, {"Reporter"}, {}})
                   .empty());
  net::NodeId leaf0 = farm.fabric().leaf_switches[0];
  const std::string metric =
      "soil." + farm.topology().node(leaf0).name + ".poll_timeouts";

  sim::FaultPlan plan;
  // 90% poll loss for 2 s: ~18 timeouts/s against the 2/s SLO.
  plan.poll_loss(at(500), Duration::sec(2), leaf0, 0.9);
  ChaosController chaos(farm, std::move(plan));
  chaos.arm();
  farm.run_for(Duration::sec(4));

  telemetry::Hub& tel = farm.telemetry();
  auto firing = tel.query().label("alert.poll-timeouts.firing").first();
  ASSERT_TRUE(firing.has_value());
  // Fires inside the loss window: first timeouts need a poll interval plus
  // the poll timeout to accumulate, then the 100 ms hold must elapse.
  EXPECT_GT(firing->at, at(500));
  EXPECT_LE(firing->at, at(2000));
  // ...and resolves once the channel is clean and stragglers drained.
  auto resolved = tel.query().label("alert.poll-timeouts.resolved").first();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_GT(resolved->at, firing->at);
  EXPECT_LE(resolved->at, at(3500));
  const telemetry::Alert* a =
      farm.scarecrow().alerts().find("poll-timeouts", metric);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->state, telemetry::AlertState::kResolved);
  // Lossy polls are not a dead switch: the seeder never declared failure.
  EXPECT_FALSE(farm.seeder().node_failed(leaf0));
}

TEST(ChaosTest, TransientCrashIsRecordedWithoutDeclaringFailure) {
  // A die+recover inside one heartbeat window used to vanish from the
  // detection accounting entirely; now the recovered ping records the miss
  // streak as a transient, visible to flight dumps.
  FarmSystem farm(FarmSystemConfig{
      .topology = {.spines = 1, .leaves = 2, .hosts_per_leaf = 2}});
  CollectingHarvester harv(farm.engine(), "chaos");
  farm.bus().attach_harvester("chaos", harv);
  ASSERT_FALSE(farm.install_task({"chaos", kReporterAll, {"Reporter"}, {}})
                   .empty());
  net::NodeId victim = farm.fabric().leaf_switches[0];

  sim::FaultPlan plan;
  // Down for 300 ms — at most two missed 250 ms heartbeats, under the
  // 3-miss failure limit.
  plan.crash_reboot(at(1000), Duration::ms(300), victim);
  ChaosController chaos(farm, std::move(plan));
  chaos.arm();
  farm.run_for(Duration::sec(3));

  EXPECT_FALSE(farm.seeder().node_failed(victim));
  EXPECT_EQ(farm.seeder().detection_latency().count(), 0u);
  EXPECT_GE(farm.seeder().transients(), 1u);
  EXPECT_EQ(farm.seeder().miss_streak(victim), 0);  // streak cleared again
  if (telemetry::Hub::compiled_in()) {
    telemetry::Hub& tel = farm.telemetry();
    // The aggregate counts transients; the mark row carries the streak
    // depth at recovery.
    EXPECT_DOUBLE_EQ(tel.query().label("seeder.transients").total(),
                     static_cast<double>(farm.seeder().transients()));
    auto mark = tel.query()
                    .label("seeder.transients")
                    .kind(telemetry::EventKind::kMark)
                    .first();
    ASSERT_TRUE(mark.has_value());
    EXPECT_GT(mark->at, at(1300));
    EXPECT_GE(mark->value, 1.0);
    // The misses themselves were marked while the switch was dark.
    EXPECT_GE(tel.query().label("seeder.heartbeat_miss").count(), 1u);
  }
}

// A seed whose utility grows with vCPU: the per-switch LP allocates the
// whole core budget, so every deploy leaves the soil >90% utilized and
// fires the depletion callback *during* the seeder's own realization.
constexpr const char* kHungryAll = R"ALM(
machine Hungry {
  place all;
  long n = 0;
  state run {
    util (res) { if (res.vCPU >= 0.1) then { return res.vCPU; } }
    when (enter) do { n = n + 1; }
  }
}
)ALM";

// Regression for the re-entrancy drop at the seeder's depletion callback:
// re-placement requests raised while reoptimize() was in flight used to be
// silently discarded. Installing a vCPU-hungry task makes every deploy
// trip the depletion threshold mid-realize; those requests must now
// coalesce into (at least one, boundedly many) deferred reoptimize passes
// instead of vanishing — and the deferred pass must terminate instead of
// re-arming itself off its own no-op reallocations.
TEST(ChaosTest, DepletionMidRealizeDefersOneReoptimizeInsteadOfDropping) {
  FarmSystem farm(FarmSystemConfig{
      .topology = {.spines = 2, .leaves = 2, .hosts_per_leaf = 1}});
  auto ids = farm.install_task({.name = "hungry", .source = kHungryAll});
  ASSERT_FALSE(ids.empty());
  EXPECT_GE(farm.seeder().deferred_reoptimizes(), 1u)
      << "mid-realize depletion was dropped, not deferred";
  // Bounded: the deferred pass re-solves an unchanged problem, realizes
  // nothing (no-op allocations are skipped), and so raises no further
  // depletions — no runaway reoptimize loop.
  EXPECT_LE(farm.seeder().deferred_reoptimizes(), 3u);
  const std::uint64_t settled = farm.seeder().deferred_reoptimizes();
  farm.run_for(Duration::sec(1));
  EXPECT_EQ(farm.seeder().deferred_reoptimizes(), settled);
}

// The issue's chaos scenario: a switch fails in the middle of an ongoing
// reoptimize. The re-placement request raised for it must survive the
// in-flight solve (deferred, then served), and the fleet must converge —
// heartbeat detection declares the victim dead and the seeds leave it.
TEST(ChaosTest, SwitchFailureMidReoptimizeIsDeferredAndServed) {
  FarmSystem farm(FarmSystemConfig{
      .topology = {.spines = 2, .leaves = 3, .hosts_per_leaf = 1}});
  Seeder& seeder = farm.seeder();
  net::NodeId trigger = farm.fabric().leaf_switches[0];
  net::NodeId victim = farm.fabric().leaf_switches[1];

  // Replace the seeder's depletion callback on the trigger soil: the first
  // depletion its deploy raises (guaranteed mid-realize by the hungry
  // task) crashes the victim switch and requests a re-placement while the
  // seeder is still realizing the previous one.
  bool fired = false;
  farm.soil(trigger).set_depletion_callback([&](Soil&) {
    if (fired) return;
    fired = true;
    farm.soil(victim).crash();
    farm.chassis(victim).power_off();
    farm.topology_mut().set_node_state(victim, false);
    seeder.on_topology_change(victim);
    seeder.reoptimize();  // mid-reoptimize: must defer, not drop or recurse
  });

  farm.install_task({.name = "hungry", .source = kHungryAll});
  ASSERT_TRUE(fired);
  EXPECT_GE(seeder.deferred_reoptimizes(), 1u)
      << "the mid-reoptimize request never ran";

  // Heartbeats notice the crash; the post-detection reoptimize re-places
  // the survivors and nothing runs on the dead switch.
  farm.run_for(Duration::sec(2));
  EXPECT_TRUE(seeder.node_failed(victim));
  for (const auto& id : seeder.seeds_of_task("hungry"))
    EXPECT_NE(hosting_node(farm, id), victim);
}

}  // namespace
}  // namespace farm::core
