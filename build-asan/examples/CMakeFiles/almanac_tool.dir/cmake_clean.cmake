file(REMOVE_RECURSE
  "CMakeFiles/almanac_tool.dir/almanac_tool.cpp.o"
  "CMakeFiles/almanac_tool.dir/almanac_tool.cpp.o.d"
  "almanac_tool"
  "almanac_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/almanac_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
