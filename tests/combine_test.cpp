// Combine — deterministic parallel execution.
//
// The contract under test everywhere here: the parallel run is
// *bit-identical* to the sequential run, at any thread count. These tests
// carry the `combine` ctest label so the thread-sanitizer workflow
// (verify-tsan) can target exactly the concurrent code paths.
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "placement/generator.h"
#include "placement/heuristic.h"
#include "placement/milp_placement.h"
#include "sim/sweep.h"
#include "util/pool.h"
#include "util/rng.h"

using namespace farm;
using namespace farm::placement;

namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelMapReturnsResultsInIndexOrder) {
  util::ThreadPool pool(8);
  auto out = pool.parallel_map<std::size_t>(5000, [](std::size_t i) {
    return i * i;
  });
  ASSERT_EQ(out.size(), 5000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(64, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  pool.parallel_for(16, [&](std::size_t i) {
    // Nested use of the same pool from a worker must not deadlock; it
    // executes inline on the worker.
    pool.parallel_for(16, [&](std::size_t j) {
      hits[i * 16 + j].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(round + 1,
                      [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(),
              static_cast<std::size_t>(round + 1) * (round + 2) / 2);
  }
}

TEST(ThreadPoolTest, ScopedThreadsOverridesDefault) {
  util::ScopedThreads one(1);
  EXPECT_EQ(util::ThreadPool::default_threads(), 1);
  {
    util::ScopedThreads six(6);
    EXPECT_EQ(util::ThreadPool::default_threads(), 6);
    util::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 6);
  }
  EXPECT_EQ(util::ThreadPool::default_threads(), 1);
}

TEST(ThreadPoolTest, ZeroItemsAndOneItemAreNoOpsInline) {
  util::ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(1, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Placement equivalence: sequential vs parallel, the ISSUE's 1/4/16 matrix.

PlacementProblem medium_problem(std::uint64_t seed) {
  GeneratorSpec spec;
  spec.n_switches = 24;
  spec.n_tasks = 6;
  spec.seeds_per_task = 20;
  spec.seed = seed;
  auto problem = generate_problem(spec);
  // Give the migration pass something to do: skew the current placement.
  for (auto& s : problem.seeds) {
    for (auto n : s.candidates)
      if (n < 4) {
        problem.current_placement[s.id] = n;
        problem.current_alloc[s.id] = ResourcesValue{0.2, 32, 4, 0.2};
        break;
      }
  }
  return problem;
}

void expect_identical(const PlacementResult& a, const PlacementResult& b) {
  EXPECT_EQ(a.total_utility, b.total_utility);
  EXPECT_EQ(a.lp_solves, b.lp_solves);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    const auto& x = a.placements[i];
    const auto& y = b.placements[i];
    EXPECT_EQ(x.seed, y.seed);
    EXPECT_EQ(x.node, y.node);
    EXPECT_EQ(x.variant, y.variant);
    EXPECT_EQ(x.utility, y.utility);
    EXPECT_EQ(x.alloc.vCPU, y.alloc.vCPU);
    EXPECT_EQ(x.alloc.RAM, y.alloc.RAM);
    EXPECT_EQ(x.alloc.TCAM, y.alloc.TCAM);
    EXPECT_EQ(x.alloc.PCIe, y.alloc.PCIe);
  }
}

TEST(CombinePlacementTest, ParallelSolveBitIdenticalAt1_4_16Threads) {
  for (std::uint64_t seed : {7u, 21u}) {
    auto problem = medium_problem(seed);
    HeuristicOptions seq;
    seq.threads = 1;
    auto base = solve_heuristic(problem, seq);
    for (int threads : {4, 16}) {
      HeuristicOptions par;
      par.threads = threads;
      auto r = solve_heuristic(problem, par);
      SCOPED_TRACE(testing::Message() << "seed=" << seed
                                      << " threads=" << threads);
      expect_identical(base, r);
    }
  }
}

TEST(CombinePlacementTest, FarmThreadsEnvControlsDefaultResolution) {
  // The env var is the deployment knob; ScopedThreads must shadow it so
  // tests stay hermetic.
  ::setenv("FARM_THREADS", "3", 1);
  util::ScopedThreads two(2);
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 2);
  ::unsetenv("FARM_THREADS");
}

TEST(CombinePlacementTest, MultiStartDeterministicAndNeverWorse) {
  auto problem = medium_problem(5);
  HeuristicOptions single;
  single.threads = 1;
  auto base = solve_heuristic(problem, single);

  HeuristicOptions multi;
  multi.multi_start = 4;
  multi.threads = 1;
  auto seq = solve_heuristic(problem, multi);
  // Start 0 is the unperturbed greedy, so best-of-N can only match or beat
  // the single start.
  EXPECT_GE(seq.total_utility, base.total_utility);
  EXPECT_TRUE(validate_placement(problem, seq).empty());

  for (int threads : {4, 16}) {
    HeuristicOptions par = multi;
    par.threads = threads;
    auto r = solve_heuristic(problem, par);
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_identical(seq, r);
  }
}

TEST(CombinePlacementTest, WarmStartMilpNeverBelowHeuristic) {
  GeneratorSpec spec;
  spec.n_switches = 6;
  spec.n_tasks = 3;
  spec.seeds_per_task = 2;
  spec.seed = 11;
  auto problem = generate_problem(spec);

  auto heur = solve_heuristic(problem);
  MilpPlacementOptions opt;
  opt.timeout_seconds = 10;
  opt.warm_start = true;
  auto milp = solve_milp_placement(problem, opt);
  EXPECT_GE(milp.total_utility, heur.total_utility - 1e-6);
  EXPECT_TRUE(validate_placement(problem, milp).empty());
}

TEST(CombinePlacementTest, WarmStartReturnsHeuristicWhenSearchBudgetIsZero) {
  auto problem = medium_problem(3);
  MilpPlacementOptions opt;
  opt.timeout_seconds = 0;  // branch-and-bound gets no time at all
  opt.warm_start = true;
  auto milp = solve_milp_placement(problem, opt);
  auto heur = solve_heuristic(problem, opt.warm_start_heuristic);
  // With no budget the MILP cannot beat the warm start; the warm start
  // itself must come back (not the weaker first-fit fallback).
  EXPECT_EQ(milp.total_utility, heur.total_utility);
  EXPECT_TRUE(milp.timed_out);
}

// ---------------------------------------------------------------------------
// Scenario sweep

sim::ScenarioMetrics chaos_like_scenario(std::size_t index,
                                         sim::Engine& engine) {
  util::Rng rng(index * 977 + 1);
  double fired = 0;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(engine.schedule_at(
        sim::TimePoint::origin() + sim::Duration::ms(rng.next_below(2000)),
        [&fired] { fired += 1; }));
    if (rng.next_bool(0.4)) engine.cancel(ids.back());
  }
  engine.run_until(sim::TimePoint::origin() + sim::Duration::sec(3));
  sim::ScenarioMetrics m;
  m.set("fired", fired);
  m.set("executed", static_cast<double>(engine.executed_events()));
  return m;
}

TEST(CombineSweepTest, SweepBitIdenticalAt1_4_16Threads) {
  auto base = sim::run_scenarios(32, chaos_like_scenario, {.threads = 1});
  ASSERT_EQ(base.runs.size(), 32u);
  for (int threads : {4, 16}) {
    auto r = sim::run_scenarios(32, chaos_like_scenario, {.threads = threads});
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    EXPECT_TRUE(base == r);
  }
}

TEST(CombineSweepTest, AggregateSummarizesPerKey) {
  auto result = sim::run_scenarios(
      8,
      [](std::size_t i, sim::Engine&) {
        sim::ScenarioMetrics m;
        m.set("x", static_cast<double>(i));
        if (i % 2 == 0) m.set("even_only", 1);
        return m;
      },
      {.threads = 4});
  auto agg = result.aggregate();
  EXPECT_EQ(agg.at("x").count, 8u);
  EXPECT_EQ(agg.at("x").min, 0);
  EXPECT_EQ(agg.at("x").max, 7);
  EXPECT_DOUBLE_EQ(agg.at("x").mean(), 3.5);
  EXPECT_EQ(agg.at("even_only").count, 4u);
}

TEST(CombineSweepTest, EnginesAreIndependentAcrossScenarios) {
  // Each scenario gets a fresh engine: event ids and clocks must not leak
  // between runs, whatever thread executed them.
  auto result = sim::run_scenarios(
      16,
      [](std::size_t, sim::Engine& engine) {
        sim::ScenarioMetrics m;
        auto id = engine.schedule_after(sim::Duration::ms(1), [] {});
        m.set("first_id", static_cast<double>(id));
        engine.run_until(sim::TimePoint::origin() + sim::Duration::ms(2));
        m.set("now_ms", engine.now().seconds() * 1000);
        return m;
      },
      {.threads = 8});
  for (const auto& run : result.runs) {
    EXPECT_EQ(run.get("first_id"), 1);
    EXPECT_EQ(run.get("now_ms"), 2);
  }
}

TEST(CombineSweepTest, EngineReuseChunkingIsUnobservable) {
  // chunks=count constructs a fresh engine per scenario (the historical
  // runner); every other chunking reuses engines via Engine::reset. All
  // of them must produce bit-identical sweeps.
  const std::size_t n = 24;
  auto fresh =
      sim::run_scenarios(n, chaos_like_scenario, {.threads = 2, .chunks = n});
  for (std::size_t chunks : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                             std::size_t{16}}) {
    auto r = sim::run_scenarios(n, chaos_like_scenario,
                                {.threads = 2, .chunks = chunks});
    SCOPED_TRACE(testing::Message() << "chunks=" << chunks);
    EXPECT_TRUE(fresh == r);
  }
  // Auto chunking too.
  auto r = sim::run_scenarios(n, chaos_like_scenario, {.threads = 2});
  EXPECT_TRUE(fresh == r);
}

}  // namespace
