// Property-based test sweeps (parameterized gtest).
//
// Each suite checks an invariant over a randomized family of inputs:
//   - placement results always satisfy (C1)-(C4) and never overstate MU;
//   - filter canonicalization is semantics-preserving (a filter and its
//     DNF-canonicalized re-interpretation match the same packets);
//   - the DES engine is deterministic and order-correct for random
//     schedules;
//   - LP duality-style sanity: the simplex objective equals the recomputed
//     value and respects feasibility, across random instances;
//   - XML round-trips are stable for every shipped use case.
#include <gtest/gtest.h>

#include "almanac/opt/optimize.h"
#include "almanac/opt/replay.h"
#include "almanac/xml.h"
#include "farm/chaos.h"
#include "farm/harvesters.h"
#include "farm/usecases.h"
#include "lp/simplex.h"
#include "net/filter.h"
#include "net/sketch.h"
#include "net/traffic.h"
#include "runtime/disketch.h"
#include "placement/generator.h"
#include "placement/heuristic.h"
#include "placement/milp_placement.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "util/rng.h"
#include "winnow_gen.h"

namespace farm {
namespace {

// --- Placement invariants over random instances --------------------------------

class PlacementProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementProperty, HeuristicAlwaysValidAndConsistent) {
  placement::GeneratorSpec spec;
  spec.n_switches = 12 + static_cast<int>(GetParam() % 5) * 4;
  spec.n_tasks = 4 + static_cast<int>(GetParam() % 3);
  spec.seeds_per_task = 8 + static_cast<int>(GetParam() % 7) * 3;
  spec.seed = GetParam();
  auto problem = placement::generate_problem(spec);
  auto result = placement::solve_heuristic(problem);
  auto errors = placement::validate_placement(problem, result);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  // Reported utility must equal utility recomputed from allocations.
  EXPECT_NEAR(result.total_utility,
              placement::recompute_utility(problem, result),
              1e-5 * std::max(1.0, result.total_utility));
}

TEST_P(PlacementProperty, MigrationFromRandomCurrentPlacementStaysValid) {
  placement::GeneratorSpec spec;
  spec.n_switches = 10;
  spec.n_tasks = 4;
  spec.seeds_per_task = 8;
  spec.seed = GetParam();
  auto problem = placement::generate_problem(spec);
  // Random (feasible-ish) current placement.
  util::Rng rng(GetParam() * 13 + 1);
  for (const auto& s : problem.seeds) {
    if (!rng.next_bool(0.7)) continue;
    auto n = s.candidates[rng.next_below(s.candidates.size())];
    problem.current_placement[s.id] = n;
    problem.current_alloc[s.id] =
        almanac::ResourcesValue{0.2, 32, 4, 0.2};
  }
  auto result = placement::solve_heuristic(problem);
  auto errors = placement::validate_placement(problem, result);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlacementProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Filter canonicalization ---------------------------------------------------

class FilterProperty : public ::testing::TestWithParam<std::uint64_t> {};

net::Filter random_filter(util::Rng& rng, int depth) {
  if (depth == 0 || rng.next_bool(0.4)) {
    switch (rng.next_below(5)) {
      case 0:
        return net::Filter::src_ip(net::Prefix(
            net::Ipv4(10, static_cast<std::uint8_t>(rng.next_below(4)), 0, 0),
            16));
      case 1:
        return net::Filter::dst_ip(net::Prefix(
            net::Ipv4(10, static_cast<std::uint8_t>(rng.next_below(4)), 0, 0),
            16));
      case 2:
        return net::Filter::l4_port(
            static_cast<std::uint16_t>(20 + rng.next_below(5)));
      case 3:
        return net::Filter::proto(rng.next_bool(0.5) ? net::Proto::kTcp
                                                     : net::Proto::kUdp);
      default:
        return net::Filter{};
    }
  }
  switch (rng.next_below(3)) {
    case 0:
      return net::Filter::conj(random_filter(rng, depth - 1),
                               random_filter(rng, depth - 1));
    case 1:
      return net::Filter::disj(random_filter(rng, depth - 1),
                               random_filter(rng, depth - 1));
    default:
      return net::Filter::negate(random_filter(rng, depth - 1));
  }
}

net::PacketHeader random_header(util::Rng& rng) {
  return {net::Ipv4(10, static_cast<std::uint8_t>(rng.next_below(4)),
                    static_cast<std::uint8_t>(rng.next_below(4)), 1),
          net::Ipv4(10, static_cast<std::uint8_t>(rng.next_below(4)),
                    static_cast<std::uint8_t>(rng.next_below(4)), 1),
          static_cast<std::uint16_t>(rng.next_below(40)),
          static_cast<std::uint16_t>(20 + rng.next_below(8)),
          rng.next_bool(0.5) ? net::Proto::kTcp : net::Proto::kUdp,
          {},
          512};
}

TEST_P(FilterProperty, EqualCanonicalKeysImplyEqualSemantics) {
  util::Rng rng(GetParam());
  auto f = random_filter(rng, 3);
  auto g = random_filter(rng, 3);
  if (f.canonical_key() != g.canonical_key()) return;  // vacuous
  for (int i = 0; i < 200; ++i) {
    auto h = random_header(rng);
    EXPECT_EQ(f.matches(h), g.matches(h)) << f.to_string() << " vs "
                                          << g.to_string();
  }
}

TEST_P(FilterProperty, DoubleNegationPreservesSemantics) {
  util::Rng rng(GetParam() * 31);
  auto f = random_filter(rng, 3);
  auto nn = net::Filter::negate(net::Filter::negate(f));
  for (int i = 0; i < 200; ++i) {
    auto h = random_header(rng);
    EXPECT_EQ(f.matches(h), nn.matches(h));
  }
  EXPECT_EQ(f.canonical_key(), nn.canonical_key());
}

TEST_P(FilterProperty, DeMorganHoldsSemantically) {
  util::Rng rng(GetParam() * 57 + 3);
  auto a = random_filter(rng, 2);
  auto b = random_filter(rng, 2);
  auto lhs = net::Filter::negate(net::Filter::conj(a, b));
  auto rhs = net::Filter::disj(net::Filter::negate(a), net::Filter::negate(b));
  for (int i = 0; i < 200; ++i) {
    auto h = random_header(rng);
    EXPECT_EQ(lhs.matches(h), rhs.matches(h));
  }
  // Note: canonical_key is a syntactic DNF key (no absorption laws), so the
  // keys of the two forms may differ even though semantics agree — only the
  // semantic equivalence is asserted here.
}

INSTANTIATE_TEST_SUITE_P(Sweep, FilterProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- Engine determinism ----------------------------------------------------------

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperty, RandomSchedulesExecuteInOrderAndDeterministically) {
  auto run = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    sim::Engine engine;
    std::vector<std::pair<std::int64_t, int>> log;
    for (int i = 0; i < 500; ++i) {
      auto at = sim::Duration::us(rng.next_int(0, 10'000));
      engine.schedule_after(at, [&log, &engine, i] {
        log.emplace_back(engine.now().count_ns(), i);
      });
      if (rng.next_bool(0.1)) engine.run_for(sim::Duration::us(100));
    }
    engine.run();
    return log;
  };
  auto a = run(GetParam());
  auto b = run(GetParam());
  EXPECT_EQ(a, b);  // deterministic
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_LE(a[i - 1].first, a[i].first);  // time-ordered
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- Chaos determinism ------------------------------------------------------------
// A full-system run under an RNG-seeded fault plan (link flaps, switch
// crash/reboot cycles, PCIe loss windows) is a pure function of the seed:
// two runs must agree on every event count and every exported metric.

class ChaosProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosProperty, SeededFaultPlanReplaysToIdenticalMetrics) {
  auto run = [&](std::uint64_t seed) {
    core::FarmSystem farm(core::FarmSystemConfig{
        .topology = {.spines = 2, .leaves = 3, .hosts_per_leaf = 2}});
    core::CollectingHarvester harv(farm.engine(), "p");
    farm.bus().attach_harvester("p", harv);
    auto src = R"(
      machine M {
        place all;
        poll portStats = Poll { .ival = 0.05, .what = port ANY };
        long n = 0;
        state s {
          when (portStats as stats) do { n = n + 1; send n to harvester; }
        }
      }
    )";
    farm.install_task({"p", src, {"M"}, {}});

    sim::ChaosSpec spec = core::ChaosController::default_spec(farm);
    spec.start = sim::TimePoint::origin() + sim::Duration::ms(300);
    spec.end = sim::TimePoint::origin() + sim::Duration::ms(2500);
    spec.incidents = 8;
    core::ChaosController chaos(farm, sim::random_plan(spec, seed));
    chaos.arm();

    util::Rng traffic_rng(seed ^ 0xbeef);
    farm.load_traffic(net::background_traffic(
        farm.topology(), traffic_rng, 30, 4e6, sim::Duration::sec(3)));
    farm.run_for(sim::Duration::sec(4));

    std::uint64_t timeouts = 0, retries = 0, abandoned = 0;
    for (auto* s : farm.soils()) {
      timeouts += s->poll_timeouts();
      retries += s->poll_retries();
      abandoned += s->polls_abandoned();
    }
    return std::make_tuple(
        farm.engine().executed_events(), chaos.injector().injected(),
        chaos.injector().history().size(), harv.count(),
        farm.bus().upstream().bytes, farm.bus().downstream().bytes,
        timeouts, retries, abandoned, farm.seeder().reseed_count(),
        farm.seeder().detection_latency().count(),
        farm.seeder().detection_latency().sum(),
        farm.seeder().migrations_performed(), farm.seeder().deployments());
  };
  auto a = run(GetParam());
  auto b = run(GetParam());
  EXPECT_EQ(a, b);
  // The whole plan executed.
  EXPECT_EQ(std::get<1>(a), 16u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaosProperty,
                         ::testing::Range<std::uint64_t>(1, 5));

// --- LP consistency ---------------------------------------------------------------

class LpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpProperty, OptimalSolutionsAreFeasibleAndConsistent) {
  util::Rng rng(GetParam());
  lp::Model m;
  int n = static_cast<int>(rng.next_int(2, 10));
  for (int j = 0; j < n; ++j)
    m.add_continuous("x", 0, rng.next_double(1, 20), rng.next_double(0, 5));
  int k = static_cast<int>(rng.next_int(1, 6));
  for (int i = 0; i < k; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j)
      if (rng.next_bool(0.5)) terms.push_back({j, rng.next_double(0.1, 2)});
    if (terms.empty()) terms.push_back({0, 1.0});
    m.add_constraint("c", terms, lp::Sense::kLe, rng.next_double(5, 30));
  }
  auto s = lp::solve_lp(m);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  double obj = 0;
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(s.value(j), -1e-7);
    EXPECT_LE(s.value(j), m.vars()[static_cast<std::size_t>(j)].upper + 1e-7);
    obj += m.vars()[static_cast<std::size_t>(j)].objective * s.value(j);
  }
  EXPECT_NEAR(obj, s.objective, 1e-6 * std::max(1.0, std::abs(obj)));
  for (const auto& c : m.constraints()) {
    double lhs = 0;
    for (const auto& t : c.terms) lhs += t.coeff * s.value(t.var);
    EXPECT_LE(lhs, c.rhs + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LpProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

// --- XML stability over the use-case corpus ----------------------------------------

class XmlProperty : public ::testing::TestWithParam<int> {};

TEST_P(XmlProperty, DoubleRoundTripIsAFixedPoint) {
  const auto& uc =
      core::all_use_cases()[static_cast<std::size_t>(GetParam())];
  auto p0 = almanac::parse_program(uc.source);
  auto x1 = almanac::to_xml(p0);
  auto p1 = almanac::from_xml(x1);
  auto x2 = almanac::to_xml(p1);
  EXPECT_EQ(x1, x2) << uc.name;
}

INSTANTIATE_TEST_SUITE_P(AllUseCases, XmlProperty,
                         ::testing::Range(0, 17));

// --- DiSketch merge algebra --------------------------------------------------
// The fragment/merge protocol's load-bearing invariant: folding the F
// fragments of a logical sketch — in any order, any association, at any F —
// reassembles the monolithic sketch bit-for-bit (asserted on serialized
// bytes, the strongest form). Parameterized over the fragment count.

namespace dsk = runtime::disketch;

std::vector<net::SketchSpec> disketch_specs() {
  net::SketchSpec cms;
  cms.kind = net::SketchKind::kCountMin;
  cms.width = 512;
  cms.depth = 4;
  net::SketchSpec mg;
  mg.kind = net::SketchKind::kMisraGries;
  mg.capacity = 64;
  mg.shards = 16;
  net::SketchSpec hll;
  hll.kind = net::SketchKind::kHyperLogLog;
  hll.precision = 10;
  return {cms, mg, hll};
}

class DiSketchProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiSketchProperty, FoldIsBitIdenticalToMonolithicAtAnyFragmentCount) {
  const int frags = GetParam();
  auto stream = dsk::make_zipf_stream(0xD15C, 400, 6000, 1.1);
  for (const auto& spec : disketch_specs()) {
    SCOPED_TRACE(spec.to_string());
    auto mono = dsk::run_fragments(spec, stream, 1).front();
    auto folded = dsk::fold_fragments(dsk::run_fragments(spec, stream, frags));
    EXPECT_TRUE(folded.complete());
    EXPECT_EQ(folded.serialize(), mono.serialize());
  }
}

TEST_P(DiSketchProperty, MergeIsOrderIndependent) {
  const int frags = GetParam();
  if (frags < 2) GTEST_SKIP() << "order needs >= 2 fragments";
  auto stream = dsk::make_zipf_stream(0xBEEF, 300, 4000, 1.2);
  for (const auto& spec : disketch_specs()) {
    SCOPED_TRACE(spec.to_string());
    auto parts = dsk::run_fragments(spec, stream, frags);
    std::string forward = dsk::fold_fragments(parts).serialize();
    // Reversed fold and a few seeded shuffles must yield the same bytes.
    std::vector<dsk::Fragment> rev(parts.rbegin(), parts.rend());
    EXPECT_EQ(dsk::fold_fragments(rev).serialize(), forward);
    util::Rng rng(static_cast<std::uint64_t>(frags) * 77 + 5);
    for (int round = 0; round < 3; ++round) {
      auto shuffled = parts;
      for (std::size_t i = shuffled.size(); i > 1; --i)
        std::swap(shuffled[i - 1],
                  shuffled[static_cast<std::size_t>(rng.next_below(i))]);
      EXPECT_EQ(dsk::fold_fragments(shuffled).serialize(), forward);
    }
  }
}

TEST_P(DiSketchProperty, MergeIsAssociativeOverRandomTrees) {
  const int frags = GetParam();
  if (frags < 2) GTEST_SKIP() << "association needs >= 2 fragments";
  auto stream = dsk::make_zipf_stream(0xACE, 200, 3000, 1.3);
  for (const auto& spec : disketch_specs()) {
    SCOPED_TRACE(spec.to_string());
    auto parts = dsk::run_fragments(spec, stream, frags);
    std::string forward = dsk::fold_fragments(parts).serialize();
    util::Rng rng(static_cast<std::uint64_t>(frags) * 31 + 9);
    for (int round = 0; round < 4; ++round) {
      // Random association: repeatedly merge two random partial folds.
      auto pool = parts;
      while (pool.size() > 1) {
        std::size_t a = rng.next_below(pool.size());
        std::size_t b = rng.next_below(pool.size() - 1);
        if (b >= a) ++b;
        pool[std::min(a, b)].merge(pool[std::max(a, b)]);
        pool.erase(pool.begin() +
                   static_cast<std::ptrdiff_t>(std::max(a, b)));
      }
      EXPECT_EQ(pool.front().serialize(), forward);
    }
  }
}

TEST_P(DiSketchProperty, SerializationRoundTripsAndEpochFoldReassembles) {
  const int frags = GetParam();
  auto stream = dsk::make_zipf_stream(0xF01D, 250, 3500, 1.1);
  for (const auto& spec : disketch_specs()) {
    SCOPED_TRACE(spec.to_string());
    auto parts = dsk::run_fragments(spec, stream, frags);
    std::string mono = dsk::run_fragments(spec, stream, 1).front().serialize();
    // Wire round-trip preserves bytes; EpochFold over two interleaved
    // epochs (shipped in reverse order) reassembles both.
    dsk::EpochFold fold(frags);
    int completed = 0;
    for (std::int64_t epoch : {7, 8}) {
      for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        auto wire = dsk::Fragment::deserialize(it->serialize());
        EXPECT_EQ(wire.serialize(), it->serialize());
        if (auto merged = fold.offer(epoch, wire)) {
          EXPECT_EQ(merged->serialize(), mono);
          ++completed;
        }
      }
    }
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(fold.pending_epochs(), 0u);
  }
}

TEST_P(DiSketchProperty, ClearResetsStateButKeepsOwnership) {
  const int frags = GetParam();
  auto s1 = dsk::make_zipf_stream(0xAA, 150, 2000, 1.2);
  auto s2 = dsk::make_zipf_stream(0xBB, 150, 2000, 1.2);
  for (const auto& spec : disketch_specs()) {
    SCOPED_TRACE(spec.to_string());
    // Epoch 1 then clear() then epoch 2 must equal a fresh epoch-2 run.
    auto reused = dsk::run_fragments(spec, s1, frags);
    for (auto& f : reused) {
      f.clear();
      for (const auto& item : s2.items) f.add(item.key, item.count);
    }
    auto fresh = dsk::run_fragments(spec, s2, frags);
    EXPECT_EQ(dsk::fold_fragments(reused).serialize(),
              dsk::fold_fragments(fresh).serialize());
  }
}

INSTANTIATE_TEST_SUITE_P(FragmentCounts, DiSketchProperty,
                         ::testing::Values(1, 2, 4, 16));

// Standalone sketch merges (net/sketch.h) keep their accuracy contracts
// when combining independently built summaries.
TEST(SketchMergeProperty, PlainCountMinMergeEqualsConcatenatedStream) {
  auto a = dsk::make_zipf_stream(1, 200, 3000, 1.2);
  auto b = dsk::make_zipf_stream(2, 200, 3000, 1.2);
  net::CountMinSketch left(256, 4, net::kDefaultSketchSeed,
                           net::CountMinSketch::Update::kPlain);
  net::CountMinSketch right(256, 4, net::kDefaultSketchSeed,
                            net::CountMinSketch::Update::kPlain);
  net::CountMinSketch both(256, 4, net::kDefaultSketchSeed,
                           net::CountMinSketch::Update::kPlain);
  for (const auto& it : a.items) left.add(it.key), both.add(it.key);
  for (const auto& it : b.items) right.add(it.key), both.add(it.key);
  left.merge(right);
  EXPECT_EQ(left.cells(), both.cells());
  EXPECT_EQ(left.total_added(), both.total_added());
}

TEST(SketchMergeProperty, HllMergeEqualsUnionStream) {
  auto a = dsk::make_zipf_stream(3, 500, 2000, 1.0);
  auto b = dsk::make_zipf_stream(4, 500, 2000, 1.0);
  net::HyperLogLog left(11), right(11), both(11);
  for (const auto& it : a.items) left.add(it.key), both.add(it.key);
  for (const auto& it : b.items) right.add(it.key), both.add(it.key);
  left.merge(right);
  EXPECT_EQ(left.registers(), both.registers());
}

TEST(SketchMergeProperty, MisraGriesMergeKeepsErrorBound) {
  auto a = dsk::make_zipf_stream(5, 300, 5000, 1.3);
  auto b = dsk::make_zipf_stream(6, 300, 5000, 1.3);
  net::MisraGries left(32), right(32);
  std::map<std::string, std::uint64_t> truth;
  for (const auto& it : a.items) left.add(it.key), ++truth[it.key];
  for (const auto& it : b.items) right.add(it.key), ++truth[it.key];
  left.merge(right);
  EXPECT_LE(left.size(), 32u);
  // Agarwal-style merge guarantee: every estimate under-estimates by at
  // most decremented(), which stays within N/(k+1) of the merged stream.
  std::uint64_t n = left.total_added();
  EXPECT_EQ(n, 10000u);
  EXPECT_LE(left.decremented(), n / 33 + 1);
  for (const auto& [key, est] : left.counters()) {
    EXPECT_LE(est, truth[key]);
    EXPECT_GE(est + left.decremented(), truth[key]);
  }
}

// --- Winnow soundness over random machines ---------------------------------------
// 25 sweep seeds x 10 machines = 250 randomized programs. For each: the
// abstract interpreter must terminate without throwing, and the
// optimizer's rewrite must be behaviorally invisible — replay_compare
// drives original and optimized through identical event streams and also
// checks every concrete register value of the original run against the
// analysis envelope (the engine's soundness contract, including handlers
// cut short by runtime EvalErrors).

class WinnowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WinnowProperty, AnalyzerIsSoundAndOptimizerIsInvisible) {
  for (int i = 0; i < 10; ++i) {
    std::uint64_t seed = util::derive_seed(GetParam() * 977 + 13, i);
    farm::testing::WinnowGen gen(seed);
    std::string src = gen.machine_source("Gen");
    SCOPED_TRACE("seed=" + std::to_string(seed) + "\n" + src);

    almanac::Program program;
    ASSERT_NO_THROW(program = almanac::parse_program(src));
    auto cm = almanac::compile_machine(program, "Gen");

    almanac::verify::absint::Analysis an;
    ASSERT_NO_THROW(an = almanac::verify::absint::analyze_machine(cm));
    EXPECT_TRUE(an.converged());

    auto opt = almanac::opt::optimize_machine(cm);
    almanac::opt::ReplayOptions ropts;
    ropts.seed = seed;
    ropts.streams = 2;
    ropts.events_per_stream = 24;
    auto report =
        almanac::opt::replay_compare(cm, opt.machine, opt.analysis, ropts);
    EXPECT_TRUE(report.identical) << report.divergence;
    EXPECT_TRUE(report.intervals_ok) << report.divergence;
    EXPECT_GT(report.events_run, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WinnowProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace farm
