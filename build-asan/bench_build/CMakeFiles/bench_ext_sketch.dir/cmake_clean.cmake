file(REMOVE_RECURSE
  "../bench/bench_ext_sketch"
  "../bench/bench_ext_sketch.pdb"
  "CMakeFiles/bench_ext_sketch.dir/bench_ext_sketch.cpp.o"
  "CMakeFiles/bench_ext_sketch.dir/bench_ext_sketch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
