// Internal plumbing shared by Sickle's passes. Not part of the public
// verify.h surface; fixtures and tools should include verify.h only.
#pragma once

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "almanac/interp.h"
#include "almanac/verify/verify.h"

namespace farm::almanac::verify {

// Each pass appends findings for one machine into the shared sink.
void pass_state_graph(const CompiledMachine& m, const VerifyOptions& opts,
                      DiagnosticSink& sink);
void pass_handlers(const CompiledMachine& m, const VerifyOptions& opts,
                   DiagnosticSink& sink);
void pass_dataflow(const CompiledMachine& m, const VerifyOptions& opts,
                   DiagnosticSink& sink);
void pass_utility(const CompiledMachine& m, const VerifyOptions& opts,
                  DiagnosticSink& sink);
void pass_resources(const CompiledMachine& m, const VerifyOptions& opts,
                    DiagnosticSink& sink);
void pass_places(const CompiledMachine& m, const VerifyOptions& opts,
                 DiagnosticSink& sink);
void pass_absint(const CompiledMachine& m, const VerifyOptions& opts,
                 DiagnosticSink& sink);

// Machine environment for static evaluation, mirroring Seeder::elaborate:
// externals bindings override initializers; evaluation failures and
// triggers fall back to the declared type's default value.
Env build_machine_env(const CompiledMachine& m, const VerifyOptions& opts);

// --- AST walking helpers -----------------------------------------------------

// Pre-order walk over an action tree (bodies and else-bodies included).
inline void walk_actions(const std::vector<ActionPtr>& actions,
                         const std::function<void(const Action&)>& fn) {
  for (const auto& a : actions) {
    fn(*a);
    walk_actions(a->body, fn);
    walk_actions(a->else_body, fn);
  }
}

// Pre-order walk over an expression tree.
inline void walk_expr(const Expr& e,
                      const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& a : e.args)
    if (a) walk_expr(*a, fn);
}

// All expressions hanging off an action (condition/rhs/payload/@dst).
inline void walk_action_exprs(const Action& a,
                              const std::function<void(const Expr&)>& fn) {
  if (a.expr) walk_expr(*a.expr, fn);
  if (a.to_dst) walk_expr(*a.to_dst, fn);
}

// Names of the program functions transitively reachable from `actions`
// (call sites by name; builtins take precedence over same-named user
// functions, matching the interpreter).
std::unordered_set<std::string> reachable_functions(
    const Program& program, const std::vector<ActionPtr>& actions);

}  // namespace farm::almanac::verify
