# Empty dependencies file for farm_placement.
# This may be replaced when dependencies are built.
