#include "almanac/ast.h"

namespace farm::almanac {

std::string to_string(TypeName t) {
  switch (t) {
    case TypeName::kBool:
      return "bool";
    case TypeName::kInt:
      return "int";
    case TypeName::kLong:
      return "long";
    case TypeName::kFloat:
      return "float";
    case TypeName::kString:
      return "string";
    case TypeName::kList:
      return "list";
    case TypeName::kPacket:
      return "packet";
    case TypeName::kAction:
      return "action";
    case TypeName::kFilter:
      return "filter";
    case TypeName::kStats:
      return "stats";
    case TypeName::kRule:
      return "rule";
    case TypeName::kSketch:
      return "sketch";
    case TypeName::kVoid:
      return "void";
  }
  return "?";
}

std::string to_string(TriggerType t) {
  switch (t) {
    case TriggerType::kTime:
      return "time";
    case TriggerType::kPoll:
      return "poll";
    case TriggerType::kProbe:
      return "probe";
  }
  return "?";
}

std::string to_string(BinOp op) {
  switch (op) {
    case BinOp::kAnd:
      return "and";
    case BinOp::kOr:
      return "or";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGe:
      return ">=";
    case BinOp::kLt:
      return "<";
    case BinOp::kGt:
      return ">";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "<>";
  }
  return "?";
}

}  // namespace farm::almanac
