# Empty compiler generated dependencies file for bench_fig8_pcie.
# This may be replaced when dependencies are built.
