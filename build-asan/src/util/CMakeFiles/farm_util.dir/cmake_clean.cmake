file(REMOVE_RECURSE
  "CMakeFiles/farm_util.dir/log.cpp.o"
  "CMakeFiles/farm_util.dir/log.cpp.o.d"
  "CMakeFiles/farm_util.dir/rng.cpp.o"
  "CMakeFiles/farm_util.dir/rng.cpp.o.d"
  "libfarm_util.a"
  "libfarm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
