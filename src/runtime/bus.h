// Message bus: the control-plane fabric between soils, harvesters, and the
// seeder (the role RabbitMQ plays in the paper's implementation, §V-A c).
//
// Every message crosses the out-of-band management network: the bus charges
// the control-path latency plus serialization time at the control link
// bandwidth, and meters bytes per direction — the network-load numbers of
// Fig. 4 read these meters.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/soil.h"
#include "sim/metrics.h"

namespace farm::runtime {

class Harvester;

class MessageBus : public SoilNetwork {
 public:
  explicit MessageBus(sim::Engine& engine);

  // Registration. Soils/harvesters must outlive the bus or deregister.
  void attach_soil(Soil& soil);
  void detach_soil(net::NodeId node);
  void attach_harvester(const std::string& task, Harvester& harvester);
  void detach_harvester(const std::string& task);

  // --- SoilNetwork (seed-originated traffic) -------------------------------
  void to_harvester(const SeedId& from, net::NodeId from_switch,
                    const Value& payload) override;
  void to_machine(const SeedId& from, net::NodeId from_switch,
                  const std::string& machine,
                  std::optional<std::int64_t> dst_switch,
                  const Value& payload) override;

  // --- Harvester/seeder-originated traffic ---------------------------------
  // Liveness probe over the management network: the callback fires with
  // true after a round trip iff the soil's switch is powered; a dead switch
  // never answers (the caller's timeout decides it is gone). Works on
  // detached soils too — the seeder keeps probing failed switches to spot
  // reboots.
  void ping(Soil& soil, std::function<void(bool alive)> cb);
  void harvester_to_seed(const std::string& task, const SeedId& to,
                         const Value& payload);
  // All seeds of (task, machine) everywhere; machine empty = every seed of
  // the task.
  void harvester_broadcast(const std::string& task, const std::string& machine,
                           const Value& payload);

  // Seed lookup across all attached soils.
  std::vector<std::pair<Soil*, Seed*>> seeds_of(
      const std::string& task, const std::string& machine) const;
  Soil* soil_at(net::NodeId node) const;

  // --- Metering ------------------------------------------------------------
  // Bytes that crossed the management network toward central components
  // (the collector-side load FARM minimizes) and away from them.
  const sim::ByteMeter& upstream() const { return upstream_; }
  const sim::ByteMeter& downstream() const { return downstream_; }

 private:
  sim::Duration control_delay(std::size_t bytes) const;

  void meter_up(std::size_t bytes);
  void meter_down(std::size_t bytes);

  sim::Engine& engine_;
  std::unordered_map<net::NodeId, Soil*> soils_;
  std::unordered_map<std::string, Harvester*> harvesters_;
  sim::ByteMeter upstream_;
  sim::ByteMeter downstream_;
  // Granary mirror of the meters: bus.{up,down}.{bytes,msgs} events let
  // benchmarks slice management-network load by time window (Fig. 4).
  telemetry::Hub* tel_ = nullptr;
  telemetry::MetricId m_up_bytes_ = telemetry::kInvalidMetric;
  telemetry::MetricId m_up_msgs_ = telemetry::kInvalidMetric;
  telemetry::MetricId m_down_bytes_ = telemetry::kInvalidMetric;
  telemetry::MetricId m_down_msgs_ = telemetry::kInvalidMetric;
  // Delivery lag (control-path latency + serialization) of the most recent
  // upstream report, in ms — the bus-lag signal Scarecrow's SLO watches.
  // Registry-only (level): updated per report without an event row.
  telemetry::MetricId m_up_lag_ = telemetry::kInvalidMetric;
};

// Per-task centralized coordinator (§II-C a). Subclasses implement the
// global reaction logic; the base class handles transport.
class Harvester {
 public:
  Harvester(sim::Engine& engine, std::string task)
      : engine_(engine), task_(std::move(task)) {}
  virtual ~Harvester() = default;

  const std::string& task() const { return task_; }
  sim::Engine& engine() { return engine_; }

  // Called by the bus when a seed reports in.
  virtual void on_seed_message(const SeedId& from, net::NodeId from_switch,
                               const Value& payload) = 0;

  // Bus-facing entry: meters the report as "harvester.<task>.reports" before
  // dispatching, stamped at *receipt* time — responsiveness queries (Tab. IV)
  // care about when the harvester learned, not when the seed sent.
  void handle_seed_message(const SeedId& from, net::NodeId from_switch,
                           const Value& payload) {
    if (m_reports_ == telemetry::kInvalidMetric)
      m_reports_ = engine_.telemetry().counter("harvester." + task_ + ".reports");
    engine_.telemetry().add(m_reports_);
    on_seed_message(from, from_switch, payload);
  }

  void bind(MessageBus& bus) { bus_ = &bus; }
  void send_to_seed(const SeedId& to, const Value& payload) {
    if (bus_) bus_->harvester_to_seed(task_, to, payload);
  }
  void broadcast(const std::string& machine, const Value& payload) {
    if (bus_) bus_->harvester_broadcast(task_, machine, payload);
  }

 private:
  sim::Engine& engine_;
  std::string task_;
  MessageBus* bus_ = nullptr;
  telemetry::MetricId m_reports_ = telemetry::kInvalidMetric;
};

}  // namespace farm::runtime
