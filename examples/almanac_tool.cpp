// almanac_tool — developer CLI for the Almanac toolchain.
//
//   almanac_tool check <file.alm>            parse + compile + analyze
//   almanac_tool lint [--werror] <file.alm>  Sickle verification (gcc-style
//                                            diagnostics; exit 1 on errors,
//                                            and on warnings with --werror)
//   almanac_tool optimize <file.alm>         Winnow analysis-driven rewrite:
//                                            per-machine stats, before/after
//                                            TCAM/PCIe estimates, and a
//                                            replay-equivalence verdict
//   almanac_tool xml <file.alm>              emit the XML seed image (§V-A d)
//   almanac_tool dump-usecases <dir>         write the Table I programs as
//                                            .alm files into <dir>
//
// `lint` resolves place directives against the default spine-leaf
// deployment (4 spines × 16 leaves × 8 hosts) and scores resource
// estimates against the default SwitchConfig (1024-entry monitoring TCAM,
// 48 interfaces, 8 Mbps PCIe poll channel).
//
// `check` runs the full seeder front-end on every machine in the program:
// compilation (inheritance, util restrictions), utility analysis
// (constraints C^s / utility u^s as polynomials), and poll analysis
// (subjects + interval functions) — the exact information the placement
// optimizer consumes.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "almanac/analysis.h"
#include "almanac/opt/optimize.h"
#include "almanac/opt/replay.h"
#include "almanac/verify/estimate.h"
#include "almanac/verify/verify.h"
#include "almanac/xml.h"
#include "farm/usecases.h"

using namespace farm;

namespace {

int check(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    auto program = almanac::parse_program(buf.str());
    std::printf("%zu function(s), %zu machine(s)\n",
                program.functions.size(), program.machines.size());
    for (const auto& mdecl : program.machines) {
      auto cm = almanac::compile_machine(program, mdecl.name);
      std::printf("\nmachine %s%s\n", cm.name.c_str(),
                  mdecl.extends.empty()
                      ? ""
                      : (" extends " + mdecl.extends).c_str());
      std::printf("  states: ");
      for (const auto& st : cm.states)
        std::printf("%s%s ", st.name.c_str(),
                    st.name == cm.initial_state ? "*" : "");
      std::printf("\n");
      for (const auto& st : cm.states) {
        if (!st.util) continue;
        auto ua = almanac::analyze_utility(*st.util);
        std::printf("  util[%s]: %zu variant(s)\n", st.name.c_str(),
                    ua.variants.size());
        for (const auto& v : ua.variants) {
          for (const auto& c : v.constraints)
            std::printf("    C: %s >= 0\n", c.to_string().c_str());
          std::printf("    u: min of %zu term(s)", v.util_min_terms.size());
          if (!v.util_min_terms.empty())
            std::printf(" — first: %s",
                        v.util_min_terms[0].to_string().c_str());
          std::printf("\n");
        }
      }
      almanac::Env env;
      almanac::Interpreter interp(cm, nullptr);
      for (const auto* v : cm.vars)
        if (v->init && !v->trigger) {
          try {
            env.define(v->name, interp.eval(*v->init, env));
          } catch (const almanac::EvalError&) {
          }
        }
      for (const auto& pa :
           almanac::analyze_polls(cm, env, {1, 128, 32, 1})) {
        std::printf("  %s %s: subjects=%zu, ival%s = %s\n",
                    to_string(pa.ttype).c_str(), pa.var.c_str(),
                    pa.subjects.size(), pa.inv_linear ? "(r)" : "",
                    pa.inv_linear ? ("1/(" + pa.inv_ival.to_string() + ")").c_str()
                                  : "constant");
      }
    }
    std::printf("\nOK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int lint(const std::string& path, bool werror) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  // Reference deployment for the topology-dependent passes.
  net::SpineLeaf fabric = net::build_spine_leaf({});
  net::SdnController controller(fabric.topo);
  almanac::verify::VerifyOptions opts;
  opts.controller = &controller;

  std::vector<almanac::verify::Diagnostic> diags;
  try {
    auto program = almanac::parse_program(buf.str());
    diags = almanac::verify::verify_program(program, opts);
  } catch (const std::exception& e) {
    // Parse errors preempt verification; report in the same shape.
    std::fprintf(stderr, "%s: error: [PARSE] %s\n", path.c_str(), e.what());
    return 1;
  }
  for (const auto& d : diags)
    std::fprintf(stderr, "%s\n", d.format(path).c_str());
  std::size_t errors = almanac::verify::count_errors(diags);
  std::size_t warnings = almanac::verify::count_warnings(diags);
  if (!diags.empty())
    std::fprintf(stderr, "%s: %zu error(s), %zu warning(s)\n", path.c_str(),
                 errors, warnings);
  if (errors > 0) return 1;
  if (werror && warnings > 0) return 1;
  return 0;
}

int optimize_cmd(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  net::SpineLeaf fabric = net::build_spine_leaf({});
  net::SdnController controller(fabric.topo);
  almanac::verify::VerifyOptions vopts;
  vopts.controller = &controller;

  try {
    auto program = almanac::parse_program(buf.str());
    bool all_ok = true;
    for (const auto& mdecl : program.machines) {
      auto cm = almanac::compile_machine(program, mdecl.name);
      auto result = almanac::opt::optimize_machine(cm);
      const auto& st = result.stats;
      std::printf("machine %s%s\n", cm.name.c_str(),
                  st.applied ? "" : " (rewrite not applied — fell back)");
      std::printf(
          "  rewrites: %d const fold(s), %d if splice(s), %d dead loop(s),\n"
          "            %d handler(s), %d state(s), %d register(s), "
          "%d store(s)\n",
          st.folded_consts, st.pruned_ifs, st.deleted_loops,
          st.removed_handlers, st.removed_states, st.removed_vars,
          st.removed_stores);

      // Before: the syntactic score the RS pass gates on. After: the
      // optimized machine re-analyzed so its own loop bounds refine the
      // estimate (the original analysis keys loop facts by the original
      // machine's AST nodes).
      auto before = almanac::verify::estimate_resources(cm, vopts, nullptr);
      auto facts = almanac::verify::absint::analyze_machine(result.machine);
      auto after =
          almanac::verify::estimate_resources(result.machine, vopts, &facts);
      std::printf("  tcam: %.0f -> %.0f rule(s)", before.tcam_rules,
                  after.tcam_rules);
      if (before.tcam_rules > 0)
        std::printf(" (%.1f%% reduction)",
                    100.0 * (before.tcam_rules - after.tcam_rules) /
                        before.tcam_rules);
      std::printf("\n  pcie: %.3f -> %.3f Mbps\n", before.pcie_mbps,
                  after.pcie_mbps);

      auto report =
          almanac::opt::replay_compare(cm, result.machine, result.analysis);
      std::printf("  replay: %d event(s), %s\n", report.events_run,
                  report.ok() ? "bit-identical, envelopes hold"
                              : report.divergence.c_str());
      if (!report.ok()) all_ok = false;
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int emit_xml(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    auto program = almanac::parse_program(buf.str());
    std::printf("%s\n", almanac::to_xml(program).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int dump(const std::string& dir) {
  std::vector<core::UseCase> all = core::all_use_cases();
  for (const auto& ext : core::extension_use_cases()) all.push_back(ext);
  for (const auto& uc : all) {
    std::string name = uc.name;
    for (auto& c : name)
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    std::string path = dir + "/" + name + ".alm";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << uc.source;
    std::printf("wrote %s (%d LoC)\n", path.c_str(), uc.seed_loc);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "check") return check(argv[2]);
  // `lint` and `--lint` are synonyms; `--werror` promotes warnings.
  if (argc >= 3 &&
      (std::string(argv[1]) == "lint" || std::string(argv[1]) == "--lint")) {
    bool werror = false;
    std::string file;
    for (int i = 2; i < argc; ++i) {
      if (std::string(argv[i]) == "--werror")
        werror = true;
      else
        file = argv[i];
    }
    if (!file.empty()) return lint(file, werror);
  }
  if (argc == 3 && std::string(argv[1]) == "optimize")
    return optimize_cmd(argv[2]);
  if (argc == 3 && std::string(argv[1]) == "xml") return emit_xml(argv[2]);
  if (argc == 3 && std::string(argv[1]) == "dump-usecases")
    return dump(argv[2]);
  std::fprintf(stderr,
               "usage: almanac_tool check <file.alm>\n"
               "       almanac_tool lint [--werror] <file.alm>\n"
               "       almanac_tool optimize <file.alm>\n"
               "       almanac_tool xml <file.alm>\n"
               "       almanac_tool dump-usecases <dir>\n");
  return 2;
}
