// Deep-clone utilities for the Almanac AST.
//
// Winnow's optimizer never rewrites the program a CompiledMachine borrows
// from: it clones the flattened machine (plus the reachable functions) into
// an owned Program and rewrites the clones. The CloneMap records the
// original -> clone correspondence so facts the analysis keyed on original
// Expr*/Action* nodes can be transferred onto the rewritten tree.
#pragma once

#include <unordered_map>
#include <vector>

#include "almanac/ast.h"

namespace farm::almanac::opt {

struct CloneMap {
  std::unordered_map<const Expr*, Expr*> exprs;
  std::unordered_map<const Action*, Action*> actions;
};

ExprPtr clone_expr(const Expr& e, CloneMap* map = nullptr);
ActionPtr clone_action(const Action& a, CloneMap* map = nullptr);
std::vector<ActionPtr> clone_actions(const std::vector<ActionPtr>& actions,
                                     CloneMap* map = nullptr);
VarDecl clone_var(const VarDecl& v, CloneMap* map = nullptr);
UtilityDecl clone_util(const UtilityDecl& u, CloneMap* map = nullptr);
EventDecl clone_event(const EventDecl& ev, CloneMap* map = nullptr);
PlaceDirective clone_place(const PlaceDirective& p, CloneMap* map = nullptr);
FuncDecl clone_function(const FuncDecl& f, CloneMap* map = nullptr);

}  // namespace farm::almanac::opt
