// ChaosController — applies sim-layer fault events to a FarmSystem.
//
// The fault subsystem (sim/fault.h) only knows integer ids and virtual
// time; this controller is the sink that turns each event into real
// consequences across the stack:
//   kLinkDown/kLinkUp     → topology liveness flip (paths recompute, the
//                           traffic driver reroutes around the dead link);
//   kSwitchCrash          → soil process dies (seeds, registrations, poll
//                           groups gone), chassis powers off (TCAM and port
//                           counters wiped, PCIe channel dead), node leaves
//                           path computation;
//   kSwitchReboot         → chassis powers back on with a clean slate and
//                           the node rejoins the fabric — the seeder's
//                           heartbeat notices and re-places seeds;
//   kPollLossStart/Stop   → PCIe request-loss window on that switch (polls
//                           time out and retry in the soil).
#pragma once

#include <string>

#include "farm/system.h"
#include "sim/fault.h"

namespace farm::core {

class ChaosController {
 public:
  // The plan's switch/link ids must be node ids of the system's topology.
  ChaosController(FarmSystem& system, sim::FaultPlan plan);

  void arm() { injector_.arm(); }
  void disarm() { injector_.disarm(); }
  const sim::FaultInjector& injector() const { return injector_; }

  // Arm the system's flight recorder at `path`: every applied fault then
  // rewrites the chrome-trace dump with the tail of the telemetry (and a
  // FARM_CHECK failure dumps too). The trace shows each fault as an instant
  // event "chaos.<kind>" whose value is the target node — emitted *before*
  // the fault is applied, so fault → symptom ordering is assertable.
  void record_flight_to(std::string path, std::size_t last_events = 4096);

  // Target universe covering the whole fabric: every switch is crashable,
  // every switch-switch link is flappable. Host uplinks are excluded —
  // downing one just silences a host, which no component reacts to.
  static sim::ChaosSpec default_spec(const FarmSystem& system);

 private:
  void apply(const sim::FaultEvent& e);

  FarmSystem& system_;
  sim::FaultInjector injector_;
  bool flight_armed_ = false;
};

}  // namespace farm::core
