#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "placement/model.h"

namespace farm::placement {

namespace {

double res_dim(const ResourcesValue& r, std::size_t d) {
  switch (d) {
    case almanac::kVCpu:
      return r.vCPU;
    case almanac::kRam:
      return r.RAM;
    case almanac::kTcam:
      return r.TCAM;
    default:
      return r.PCIe;
  }
}

}  // namespace

double recompute_utility(const PlacementProblem& problem,
                         const PlacementResult& result) {
  double total = 0;
  for (const auto& e : result.placements) {
    const SeedModel* seed = nullptr;
    for (const auto& s : problem.seeds)
      if (s.id == e.seed) seed = &s;
    if (!seed) continue;
    if (e.variant < 0 ||
        static_cast<std::size_t>(e.variant) >= seed->variants.size())
      continue;
    total += seed->variants[static_cast<std::size_t>(e.variant)].utility(
        e.alloc);
  }
  return total;
}

std::vector<std::string> validate_placement(const PlacementProblem& problem,
                                            const PlacementResult& result,
                                            double tolerance) {
  std::vector<std::string> errors;
  auto fail = [&errors](std::string msg) { errors.push_back(std::move(msg)); };

  std::map<std::string, const SeedModel*> seed_by_id;
  for (const auto& s : problem.seeds) seed_by_id[s.id] = &s;

  // Per-seed checks + uniqueness.
  std::set<std::string> placed;
  std::map<std::string, std::set<std::string>> task_placed, task_all;
  for (const auto& s : problem.seeds) task_all[s.task].insert(s.id);

  for (const auto& e : result.placements) {
    auto it = seed_by_id.find(e.seed);
    if (it == seed_by_id.end()) {
      fail("unknown seed placed: " + e.seed);
      continue;
    }
    const SeedModel& s = *it->second;
    if (!placed.insert(e.seed).second) {
      fail("seed placed twice: " + e.seed);  // C1: at most one switch
      continue;
    }
    task_placed[s.task].insert(e.seed);
    if (std::find(s.candidates.begin(), s.candidates.end(), e.node) ==
        s.candidates.end())
      fail("seed " + e.seed + " placed outside N^s");
    if (e.variant < 0 ||
        static_cast<std::size_t>(e.variant) >= s.variants.size()) {
      fail("seed " + e.seed + " uses invalid variant");
      continue;
    }
    // C2: allocation inside the variant's feasibility region.
    const auto& variant = s.variants[static_cast<std::size_t>(e.variant)];
    for (const auto& c : variant.constraints)
      if (c.eval(e.alloc) < -tolerance)
        fail("seed " + e.seed + " violates C2: " + c.to_string());
    // C3: allocation within the switch's total capacity.
    const SwitchModel* sw = problem.switch_model(e.node);
    if (!sw) {
      fail("seed " + e.seed + " placed on unknown switch");
      continue;
    }
    for (std::size_t d = 0; d < almanac::kNumResources; ++d)
      if (res_dim(e.alloc, d) > res_dim(sw->capacity, d) + tolerance)
        fail("seed " + e.seed + " violates C3 on dim " + std::to_string(d));
  }

  // C1: a task is placed entirely or not at all.
  for (const auto& [task, all] : task_all) {
    auto it = task_placed.find(task);
    std::size_t n = it == task_placed.end() ? 0 : it->second.size();
    if (n != 0 && n != all.size())
      fail("task " + task + " partially placed (" + std::to_string(n) + "/" +
           std::to_string(all.size()) + ")");
  }

  // C4: per-switch totals. Non-poll resources sum allocations (plus the
  // migration double-charge for seeds that moved away from their current
  // switch); the poll resource sums per-subject maxima.
  for (const auto& sw : problem.switches) {
    ResourcesValue used{};
    std::map<std::string, double> pollres;  // subject → demand
    for (const auto& e : result.placements) {
      const SeedModel& s = *seed_by_id.at(e.seed);
      bool here = e.node == sw.node;
      // Migration residue: seed currently on sw but moving elsewhere keeps
      // its old allocation until state transfer completes.
      auto cur = problem.current_placement.find(e.seed);
      bool migrating_away = cur != problem.current_placement.end() &&
                            cur->second == sw.node && e.node != sw.node;
      if (here) {
        used.vCPU += e.alloc.vCPU;
        used.RAM += e.alloc.RAM;
        used.TCAM += e.alloc.TCAM;
        for (const auto& p : s.polls) {
          double demand = sw.alpha_poll * p.inv_ival.eval(e.alloc);
          auto [it2, _] = pollres.try_emplace(p.subject, 0.0);
          it2->second = std::max(it2->second, demand);
        }
      }
      if (migrating_away) {
        auto ra = problem.current_alloc.find(e.seed);
        if (ra != problem.current_alloc.end()) {
          used.vCPU += ra->second.vCPU;
          used.RAM += ra->second.RAM;
          used.TCAM += ra->second.TCAM;
          for (const auto& p : s.polls) {
            double demand = sw.alpha_poll * p.inv_ival.eval(ra->second);
            auto [it2, _] = pollres.try_emplace(p.subject, 0.0);
            it2->second = std::max(it2->second, demand);
          }
        }
      }
    }
    if (used.vCPU > sw.capacity.vCPU + tolerance ||
        used.RAM > sw.capacity.RAM + tolerance ||
        used.TCAM > sw.capacity.TCAM + tolerance)
      fail("switch " + std::to_string(sw.node) + " over non-poll capacity");
    double total_poll = 0;
    for (const auto& [_, d] : pollres) total_poll += d;
    if (total_poll > sw.capacity.PCIe + tolerance)
      fail("switch " + std::to_string(sw.node) + " over polling capacity");
  }

  return errors;
}

}  // namespace farm::placement
