file(REMOVE_RECURSE
  "../bench/bench_fig8_pcie"
  "../bench/bench_fig8_pcie.pdb"
  "CMakeFiles/bench_fig8_pcie.dir/bench_fig8_pcie.cpp.o"
  "CMakeFiles/bench_fig8_pcie.dir/bench_fig8_pcie.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
