// Recursive-descent parser for Almanac (grammar of Fig. 3).
//
// Concrete syntax decisions where the paper's figure is abstract:
//   - user functions:        func <type> name(<type> a, ...) { ... }
//   - switch-list placement: place all 3, 8;   (comma-separated ids)
//   - range placement:       place any receiver <expr> range <= 1;
//   - `port ANY` yields an interface-wildcard atom (the HH example polls
//     per-interface statistics); numeric `port e` is an L4-port atom, and
//     srcPort/dstPort/iface/proto atoms are also available.
//   - struct initializers:   Poll { .ival = e, .what = e }
#pragma once

#include <stdexcept>
#include <string>

#include "almanac/ast.h"

namespace farm::almanac {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, SourceLoc loc)
      : std::runtime_error(loc.to_string() + ": " + message), loc_(loc) {}
  SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

// Parses a full program; throws ParseError (or its base) on syntax errors.
Program parse_program(std::string_view source);

}  // namespace farm::almanac
