// Scarecrow: the farm's watchful eye — SLO alerting and fabric health on
// top of Granary telemetry.
//
// A Scarecrow owns one AlertManager and one HealthTree per FarmSystem and
// drives both from a virtual-time periodic task:
//   - the default SLO rules cover the paper's operational failure modes:
//     soils gone silent (switch crash), PCIe poll timeouts (lossy or
//     saturated channel), PCIe bandwidth burn against the 8 Mbps budget,
//     harvester message-bus lag, seed re-placement downtime, and
//     monitoring-TCAM occupancy;
//   - the health tree grades every switch (seeder heartbeat grade, halved
//     per firing alert naming the switch) and rolls the scores up
//     switch → pod → fabric, published as the "health.fabric" gauge.
// Alert transitions are mark events, so chrome-trace exports and chaos
// flight dumps show pending/firing/resolved edges next to the fault marks
// that caused them. The end-of-run "farm report" (text or JSON) renders
// hub + alerts + health in one snapshot.
//
// With FARM_TELEMETRY=OFF, or the hub muted, the periodic task never
// starts: Scarecrow costs exactly nothing when telemetry is off.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "telemetry/alert.h"
#include "telemetry/health.h"

namespace farm::core {

class FarmSystem;

struct ScarecrowConfig {
  bool enabled = true;
  // Alert evaluation cadence (virtual time). Detection latency of a
  // staleness rule is its threshold plus at most one period.
  sim::Duration eval_period = sim::Duration::ms(100);
  // Install default_rules() on construction.
  bool install_default_rules = true;
  // Extra declarative rules (SloRule::parse grammar), applied after the
  // defaults. Unparseable entries are skipped.
  std::vector<std::string> rules;
  // Leaves per pod group in the health tree; spines form their own group.
  int pod_leaves = 4;
};

class Scarecrow {
 public:
  Scarecrow(FarmSystem& system, ScarecrowConfig config);

  // The built-in SLO rule set (declarative form).
  static std::vector<std::string> default_rules();

  telemetry::AlertManager& alerts() { return alerts_; }
  const telemetry::AlertManager& alerts() const { return alerts_; }
  const telemetry::HealthTree& health() const { return health_; }
  double fabric_score() const { return health_.fabric_score(); }
  // Whether the periodic evaluator is active (false when telemetry is
  // compiled out, muted, or enabled=false).
  bool running() const { return task_ != nullptr; }

  // One evaluation right now — what the periodic task does each tick.
  // Callable even when !running() (e.g. before a report with telemetry
  // muted: alerts see frozen aggregates, health still reflects the seeder).
  void evaluate_now();

  // "farm report" renderers over this system's hub + alerts + health.
  void write_report(std::ostream& os) const;
  void write_report_json(std::ostream& os) const;

 private:
  void refresh_health();

  FarmSystem& system_;
  ScarecrowConfig config_;
  telemetry::AlertManager alerts_;
  telemetry::HealthTree health_;
  std::unique_ptr<sim::PeriodicTask> task_;
  telemetry::MetricId m_fabric_ = telemetry::kInvalidMetric;
};

}  // namespace farm::core
