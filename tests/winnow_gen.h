// Deterministic random Almanac machine generator for the Winnow property
// sweeps (tests/property_test.cpp, winnow section).
//
// Every generated program parses and compiles; runtime faults (division
// by zero, checked-arithmetic overflow, bad operand types) are not only
// allowed but desirable — handlers cut short by a caught EvalError are
// exactly the executions the abstract interpreter's prefix-env
// accumulation must stay sound for. The generator is seeded through
// util::derive_seed, so a failing seed reproduces byte-for-byte.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "util/rng.h"

namespace farm::testing {

class WinnowGen {
 public:
  explicit WinnowGen(std::uint64_t seed)
      : rng_(seed),
        n_regs_(2 + static_cast<int>(rng_.next_below(3))),
        n_states_(1 + static_cast<int>(rng_.next_below(3))) {}

  // One self-contained machine named `name`.
  std::string machine_source(const std::string& name) {
    std::ostringstream out;
    out << "machine " << name << " {\n";
    out << "  place all;\n";
    out << "  poll p = Poll { .ival = 1.0, .what = port ANY };\n";
    out << "  time t = 2.0;\n";
    for (int r = 0; r < n_regs_; ++r)
      out << "  long r" << r << " = " << init_const() << ";\n";
    for (int s = 0; s < n_states_; ++s) emit_state(out, s);
    out << "}\n";
    return out.str();
  }

 private:
  util::Rng rng_;
  int n_regs_;
  int n_states_;
  int local_id_ = 0;

  int pick(int n) { return static_cast<int>(rng_.next_below(n)); }

  std::string reg() { return "r" + std::to_string(pick(n_regs_)); }

  std::string init_const() {
    switch (pick(4)) {
      case 0: return "0";
      case 1: return std::to_string(pick(100));
      case 2: return std::to_string(-pick(50));
      // Near the int64 rail: arithmetic on this register overflows, which
      // the checked interpreter turns into a caught EvalError mid-handler.
      default: return "4611686018427387904";
    }
  }

  std::string expr(int depth) {
    if (depth <= 0 || pick(3) == 0) {
      switch (pick(3)) {
        case 0: return std::to_string(pick(64));
        case 1: return std::to_string(1 + pick(7));  // safe divisor-ish
        default: return reg();
      }
    }
    switch (pick(6)) {
      case 0: return "(" + expr(depth - 1) + " + " + expr(depth - 1) + ")";
      case 1: return "(" + expr(depth - 1) + " - " + expr(depth - 1) + ")";
      case 2: return "(" + expr(depth - 1) + " * " + expr(depth - 1) + ")";
      case 3: return "(" + expr(depth - 1) + " / " + expr(depth - 1) + ")";
      case 4:
        return "min(" + expr(depth - 1) + ", " + expr(depth - 1) + ")";
      default:
        return "max(" + expr(depth - 1) + ", abs(" + expr(depth - 1) + "))";
    }
  }

  std::string cmp() {
    static const char* kOps[] = {"<", "<=", ">", ">=", "==", "<>"};
    return kOps[pick(6)];
  }

  void emit_stmt(std::ostringstream& out, const std::string& ind, int depth,
                 bool allow_transit) {
    switch (pick(allow_transit ? 7 : 6)) {
      case 0:
        out << ind << reg() << " = " << expr(depth) << ";\n";
        break;
      case 1: {
        std::string l = "v" + std::to_string(local_id_++);
        out << ind << "long " << l << " = " << expr(depth) << ";\n";
        out << ind << reg() << " = (" << l << " + " << expr(1) << ");\n";
        break;
      }
      case 2: {
        out << ind << "if (" << expr(depth) << " " << cmp() << " "
            << expr(depth) << ") then {\n";
        emit_stmt(out, ind + "  ", depth - 1, allow_transit);
        if (pick(2) == 0) {
          out << ind << "} else {\n";
          emit_stmt(out, ind + "  ", depth - 1, allow_transit);
        }
        out << ind << "}\n";
        break;
      }
      case 3: {
        // Counting loop: the exact pattern the trip-bound prover targets.
        std::string w = "w" + std::to_string(local_id_++);
        out << ind << "long " << w << " = 0;\n";
        out << ind << "while (" << w << " < " << (1 + pick(5)) << ") {\n";
        emit_stmt(out, ind + "  ", depth - 1, false);
        out << ind << "  " << w << " = " << w << " + 1;\n";
        out << ind << "}\n";
        break;
      }
      case 4:
        out << ind << "log(\"g\" + " << reg() << ");\n";
        break;
      case 5: {
        int f = pick(4);
        if (pick(2) == 0) {
          out << ind << "if (is_nil(getTCAMRule(iface_filter(" << f
              << ")))) then {\n";
          out << ind << "  addTCAMRule(iface_filter(" << f
              << "), action_count());\n";
          out << ind << "}\n";
        } else {
          out << ind << "addTCAMRule(iface_filter(" << f
              << "), action_count());\n";
        }
        break;
      }
      default:
        out << ind << "transit s" << pick(n_states_) << ";\n";
        break;
    }
  }

  void emit_body(std::ostringstream& out, const std::string& ind,
                 bool allow_transit) {
    int n = 1 + pick(3);
    for (int i = 0; i < n; ++i) emit_stmt(out, ind, 2, allow_transit);
  }

  void emit_state(std::ostringstream& out, int s) {
    out << "  state s" << s << " {\n";
    if (pick(2) == 0)
      out << "    util (res) { return res.vCPU; }\n";
    if (pick(3) == 0) {
      out << "    when (enter) do {\n";
      emit_body(out, "      ", true);
      out << "    }\n";
    }
    out << "    when (p as cur) do {\n";
    if (pick(2) == 0)
      out << "      " << reg() << " = stats_size(cur);\n";
    emit_body(out, "      ", true);
    out << "    }\n";
    out << "    when (t as now) do {\n";
    emit_body(out, "      ", true);
    out << "    }\n";
    if (pick(3) == 0) {
      out << "    when (recv long m from harvester) do {\n";
      out << "      " << reg() << " = m;\n";
      emit_body(out, "      ", true);
      out << "    }\n";
    }
    out << "  }\n";
  }
};

}  // namespace farm::testing
