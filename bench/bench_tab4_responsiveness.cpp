// Tab. 4: time to recognize a heavy hitter.
//
// The same elephant flow is injected into the same 20-switch fabric; we
// measure how long each system needs to identify it:
//   FARM   — seeds poll port counters at 1 ms and detect on-switch; the
//            reported time includes the (out-of-band) report reaching the
//            harvester, so FARM's *local* reaction is even faster.
//   sFlow  — agents export counters every 100 ms; the central collector
//            needs two samples of the hot port.
//   Sonata — mirrored traffic is reduced per 1 s window and evaluated in
//            2 s Spark micro-batches.
//   Planck/Helios — specialized systems we do not re-implement; their
//            published numbers are printed for context (marked [lit]).
//
// Paper: FARM 1 ms, Planck 4 ms, Helios 77 ms, sFlow 100 ms, Sonata 3427 ms.
#include <cstdio>
#include <memory>

#include "bench_json.h"

#include "baselines/sflow.h"
#include "baselines/sonata.h"
#include "farm/harvesters.h"
#include "farm/system.h"
#include "farm/usecases.h"
#include "telemetry/prof.h"
#include "telemetry/store.h"

using namespace farm;
using sim::Duration;
using sim::TimePoint;

namespace {

constexpr double kFlowStartSec = 0.5;
constexpr double kFlowRate = 800e6;

// The HH machine with a 1 ms polling interval (the configuration the paper
// evaluates for responsiveness).
std::string hh_source_1ms() {
  std::string src = core::use_case("Heavy hitter (HH)").source;
  auto pos = src.find(".ival = 0.01");
  src.replace(pos, std::string(".ival = 0.01").size(), ".ival = 0.001");
  return src;
}

net::FlowSchedule elephant(const core::FarmSystem& farm_like,
                           const net::SpineLeaf& sl) {
  (void)farm_like;
  net::FlowSchedule sched;
  net::FlowSpec f;
  f.key = {*sl.topo.node(sl.hosts_by_leaf[0][0]).address,
           *sl.topo.node(sl.hosts_by_leaf[8][0]).address, 40000, 443,
           net::Proto::kTcp};
  f.rate_bps = kFlowRate;
  f.packet_bytes = 1400;
  sched.add_forever(TimePoint::origin() + Duration::from_seconds(kFlowStartSec),
                    f);
  return sched;
}

double farm_detection_ms() {
  core::FarmSystemConfig config;
  config.topology = {.spines = 4, .leaves = 16, .hosts_per_leaf = 2};
  core::FarmSystem farm(config);
  core::HhHarvester harv(farm.engine(), "hh");
  farm.bus().attach_harvester("hh", harv);
  farm.install_task(
      {"hh", hh_source_1ms(), {"HH"},
       {{"threshold", almanac::Value(std::int64_t{50'000})},
        {"hitterAction",
         almanac::Value(almanac::ActionValue{asic::RuleAction::kRateLimit,
                                             1e6})}}});
  farm.load_traffic(elephant(farm, farm.fabric()));
  farm.run_for(Duration::sec(3));
  // Granary port: the bus meters every report reaching the harvester as a
  // "harvester.hh.reports" event at receipt time — the same instants the
  // harvester recorded in report_times.
  double out = -1;
  farm.telemetry().query().label("harvester.hh.reports").for_each(
      [&](const telemetry::EventRow& r) {
        if (out >= 0) return;
        double t = r.at.seconds();
        if (t > kFlowStartSec) out = (t - kFlowStartSec) * 1000;
      });
  return out;
}

double sflow_detection_ms(Duration probe_period) {
  sim::Engine engine;
  auto sl = net::build_spine_leaf({.spines = 4, .leaves = 16,
                                   .hosts_per_leaf = 2});
  std::vector<std::unique_ptr<asic::SwitchChassis>> chassis;
  std::vector<asic::SwitchChassis*> by_node(sl.topo.node_count(), nullptr);
  for (auto n : sl.topo.switches()) {
    asic::SwitchConfig cfg;
    cfg.n_ifaces =
        std::max<int>(8, static_cast<int>(sl.topo.neighbors(n).size()));
    chassis.push_back(std::make_unique<asic::SwitchChassis>(
        engine, n, sl.topo.node(n).name, cfg, n));
    by_node[n] = chassis.back().get();
  }
  baselines::SflowCollector collector(engine);
  // Same selectivity as FARM: 50 KB per ms ⇒ scale to the probe period.
  collector.set_hh_threshold(
      static_cast<std::uint64_t>(50'000 * probe_period.millis()));
  std::vector<std::unique_ptr<baselines::SflowAgent>> agents;
  for (auto n : sl.topo.switches()) {
    agents.push_back(std::make_unique<baselines::SflowAgent>(
        engine, *by_node[n], collector,
        baselines::SflowConfig{.probe_period = probe_period}));
    agents.back()->start();
  }
  net::FlowSchedule sched;
  net::FlowSpec f;
  f.key = {*sl.topo.node(sl.hosts_by_leaf[0][0]).address,
           *sl.topo.node(sl.hosts_by_leaf[8][0]).address, 40000, 443,
           net::Proto::kTcp};
  f.rate_bps = kFlowRate;
  f.packet_bytes = 1400;
  sched.add_forever(TimePoint::origin() + Duration::from_seconds(kFlowStartSec),
                    f);
  asic::TrafficDriver driver(engine, sl.topo, by_node, sched,
                             Duration::ms(1));
  driver.start();
  engine.run_for(Duration::sec(4));
  double out = -1;
  engine.telemetry().query().label("sflow.collector.detections").for_each(
      [&](const telemetry::EventRow& r) {
        if (out >= 0) return;
        double t = r.at.seconds();
        if (t > kFlowStartSec) out = (t - kFlowStartSec) * 1000;
      });
  return out;
}

double sonata_detection_ms() {
  sim::Engine engine;
  auto sl = net::build_spine_leaf({.spines = 4, .leaves = 16,
                                   .hosts_per_leaf = 2});
  std::vector<std::unique_ptr<asic::SwitchChassis>> chassis;
  std::vector<asic::SwitchChassis*> by_node(sl.topo.node_count(), nullptr);
  for (auto n : sl.topo.switches()) {
    asic::SwitchConfig cfg;
    cfg.n_ifaces =
        std::max<int>(8, static_cast<int>(sl.topo.neighbors(n).size()));
    chassis.push_back(std::make_unique<asic::SwitchChassis>(
        engine, n, sl.topo.node(n).name, cfg, n));
    by_node[n] = chassis.back().get();
  }
  baselines::SonataProcessor processor(engine, baselines::SonataConfig{});
  // 50 KB/ms over the 1 s window.
  processor.set_hh_threshold(50'000'000);
  processor.start();
  std::vector<std::unique_ptr<baselines::SonataQuery>> queries;
  for (auto n : sl.topo.switches()) {
    queries.push_back(std::make_unique<baselines::SonataQuery>(
        engine, *by_node[n], processor, net::Filter{},
        baselines::SonataConfig{}));
    queries.back()->start();
  }
  net::FlowSchedule sched;
  net::FlowSpec f;
  f.key = {*sl.topo.node(sl.hosts_by_leaf[0][0]).address,
           *sl.topo.node(sl.hosts_by_leaf[8][0]).address, 40000, 443,
           net::Proto::kTcp};
  f.rate_bps = kFlowRate;
  f.packet_bytes = 1400;
  sched.add_forever(TimePoint::origin() + Duration::from_seconds(kFlowStartSec),
                    f);
  asic::TrafficDriver driver(engine, sl.topo, by_node, sched,
                             Duration::ms(1));
  driver.start();
  engine.run_for(Duration::sec(10));
  double out = -1;
  engine.telemetry().query().label("sonata.processor.detections").for_each(
      [&](const telemetry::EventRow& r) {
        if (out >= 0) return;
        double t = r.at.seconds();
        if (t > kFlowStartSec) out = (t - kFlowStartSec) * 1000;
      });
  return out;
}

}  // namespace

int main() {
  std::printf("Tab. 4 — HH detection time (one 800 Mbps elephant, 20-switch "
              "fabric)\n\n");
  auto& prof = telemetry::prof::Profiler::instance();
  auto pre = prof.snapshot();
  double farm_ms = farm_detection_ms();
  // Furrow solver counters: the control-plane work FARM spent to field the
  // HH task (seed placement runs through the simplex/MILP stack).
  auto post = prof.snapshot();
  std::uint64_t pivots = post.counter("lp.simplex.pivots") -
                         pre.counter("lp.simplex.pivots");
  std::uint64_t milp_nodes =
      post.counter("lp.milp.nodes") - pre.counter("lp.milp.nodes");
  double sflow_ms = sflow_detection_ms(Duration::ms(100));
  double sonata_ms = sonata_detection_ms();
  bench::BenchJson out("tab4_responsiveness");
  out.record("simplex_pivots", static_cast<double>(pivots), "count",
             {bench::param("system", "FARM")});
  out.record("milp_nodes", static_cast<double>(milp_nodes), "count",
             {bench::param("system", "FARM")});
  out.record("hh_detection_time", farm_ms, "ms",
             {bench::param("system", "FARM")});
  out.record("hh_detection_time", sflow_ms, "ms",
             {bench::param("system", "sFlow")});
  out.record("hh_detection_time", sonata_ms, "ms",
             {bench::param("system", "Sonata")});
  std::printf("%-10s %-6s %12s %14s\n", "System", "Type", "measured(ms)",
              "paper(ms)");
  std::printf("%-10s %-6s %12.1f %14s\n", "FARM", "G", farm_ms, "1");
  std::printf("%-10s %-6s %12s %14s\n", "Planck", "S", "4 [lit]", "4");
  std::printf("%-10s %-6s %12s %14s\n", "Helios", "S", "77 [lit]", "77");
  std::printf("%-10s %-6s %12.1f %14s\n", "sFlow", "G", sflow_ms, "100");
  std::printf("%-10s %-6s %12.1f %14s\n", "Sonata", "G", sonata_ms, "3427");
  std::printf("\nFARM placement cost: %llu simplex pivots, %llu MILP nodes\n",
              static_cast<unsigned long long>(pivots),
              static_cast<unsigned long long>(milp_nodes));
  bool shape_ok = farm_ms > 0 && sflow_ms > 10 * farm_ms / 3 &&
                  sonata_ms > 5 * sflow_ms;
  std::printf("\nordering FARM << sFlow << Sonata: %s (speedup over Sonata: "
              "%.0fx)\n",
              shape_ok ? "HOLDS" : "VIOLATED",
              farm_ms > 0 ? sonata_ms / farm_ms : 0.0);
  return shape_ok ? 0 : 1;
}
