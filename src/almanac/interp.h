// Tree-walking interpreter for Almanac — the seed VM.
//
// The interpreter is host-agnostic: everything that touches the switch or
// the network goes through the SeedHost interface (List. 1's runtime
// library: res(), TCAM API, exec(), plus message sending and state
// transitions). The runtime module implements SeedHost on top of the soil;
// tests implement it with fakes; static analyses evaluate expressions with
// a null host (host-dependent calls then fail, which those analyses treat
// as "not statically evaluable").
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "almanac/compile.h"
#include "almanac/value.h"

namespace farm::almanac {

class EvalError : public std::runtime_error {
 public:
  EvalError(std::string message, SourceLoc loc)
      : std::runtime_error(loc.to_string() + ": " + message), loc_(loc) {}
  SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

// Lexically chained variable environment. The machine environment is the
// root; state locals and handler bindings chain onto it.
class Env {
 public:
  explicit Env(Env* parent = nullptr) : parent_(parent) {}

  void define(const std::string& name, Value v) { vars_[name] = std::move(v); }
  // Innermost binding, or nullptr.
  Value* find(const std::string& name);
  const Value* find(const std::string& name) const;
  // Assigns the innermost existing binding; false if none exists.
  bool assign(const std::string& name, Value v);
  Env* parent() { return parent_; }
  // Own (non-inherited) bindings; used for state snapshot/migration.
  const std::unordered_map<std::string, Value>& own() const { return vars_; }

 private:
  Env* parent_;
  std::unordered_map<std::string, Value> vars_;
};

// Destination of a send action.
struct SendTarget {
  bool to_harvester = false;
  std::string machine;               // when !to_harvester
  std::optional<std::int64_t> dst;   // switch id; nullopt = broadcast
};

class SeedHost {
 public:
  virtual ~SeedHost() = default;
  virtual ResourcesValue resources() = 0;
  // TCAM API (List. 1). Rules installed by seeds go to the monitoring
  // region unless the rule value says otherwise.
  virtual void add_tcam_rule(const asic::TcamRule& rule) = 0;
  virtual void remove_tcam_rule(const net::Filter& pattern) = 0;
  virtual std::optional<asic::TcamRule> get_tcam_rule(
      const net::Filter& pattern) = 0;
  virtual void send(const Value& payload, const SendTarget& target) = 0;
  // Runs external code (the ML use case); cost accounting is host-side.
  virtual void exec(const std::string& command) = 0;
  // Deferred state transition: takes effect after the current handler.
  virtual void request_transit(const std::string& state) = 0;
  // A trigger variable was (re)assigned; the host re-arms its timer.
  virtual void trigger_updated(const std::string& var) = 0;
  virtual std::int64_t switch_id() = 0;
  virtual std::int64_t now_ms() = 0;
  virtual void log(const std::string& message) = 0;
};

// Outcome of running an action list.
struct ExecResult {
  bool returned = false;
  Value return_value;
};

class Interpreter {
 public:
  // `machine` (and its Program) must outlive the interpreter. `host` may be
  // null: host-dependent operations then raise EvalError, which static
  // analyses interpret as "not statically evaluable".
  Interpreter(const CompiledMachine& machine, SeedHost* host)
      : machine_(machine), host_(host) {}

  Value eval(const Expr& e, Env& env);
  ExecResult exec(const std::vector<ActionPtr>& actions, Env& env);
  // Calls a user-defined function of the program.
  Value call_function(const std::string& name, std::vector<Value> args,
                      Env& root, SourceLoc loc);

  // Default value for a declared (non-trigger) variable type.
  static Value default_value(TypeName t);
  // Does `v` match a recv pattern of declared type `t`?
  static bool matches_type(const Value& v, TypeName t);

 private:
  SeedHost* host(SourceLoc loc) const {
    if (!host_) throw EvalError("operation requires a runtime host", loc);
    return host_;
  }
  Value eval_binary(const Expr& e, Env& env);
  Value eval_filter_atom(const Expr& e, Env& env);
  Value eval_struct_init(const Expr& e, Env& env);
  Value eval_field(const Expr& e, Env& env);
  Value eval_call(const Expr& e, Env& env);
  Value builtin(const std::string& name, std::vector<Value>& args, Env& env,
                SourceLoc loc, bool& handled);

  const CompiledMachine& machine_;
  SeedHost* host_;
  int call_depth_ = 0;
  static constexpr int kMaxCallDepth = 128;
  static constexpr std::int64_t kMaxLoopIterations = 10'000'000;
};

}  // namespace farm::almanac
