#include "farm/chaos.h"

#include "telemetry/hub.h"

namespace farm::core {

ChaosController::ChaosController(FarmSystem& system, sim::FaultPlan plan)
    : system_(system),
      injector_(system.engine(), std::move(plan),
                [this](const sim::FaultEvent& e) { apply(e); }) {}

sim::ChaosSpec ChaosController::default_spec(const FarmSystem& system) {
  const net::Topology& topo = system.topology();
  sim::ChaosSpec spec;
  spec.switches = topo.switches();
  for (net::NodeId n : spec.switches)
    for (net::NodeId m : topo.neighbors(n))
      if (n < m && topo.node(m).kind == net::NodeKind::kSwitch)
        spec.links.emplace_back(n, m);
  spec.start = sim::TimePoint::origin() + sim::Duration::ms(500);
  spec.end = sim::TimePoint::origin() + sim::Duration::sec(5);
  return spec;
}

void ChaosController::record_flight_to(std::string path,
                                       std::size_t last_events) {
  flight_armed_ = true;
  telemetry::FlightRecorder& fr = system_.engine().telemetry().flight();
  fr.arm(std::move(path), last_events);
  fr.arm_on_check_failure();
}

void ChaosController::apply(const sim::FaultEvent& e) {
  // The fault lands in the telemetry stream *before* its consequences do:
  // chaos tests assert the chaos.<kind> mark precedes the first symptom
  // (poll timeout, failure detection, reroute) in virtual time.
  telemetry::Hub& tel = system_.engine().telemetry();
  tel.mark(tel.counter("chaos." + sim::to_string(e.kind)),
           static_cast<double>(e.a));
  net::Topology& topo = system_.topology_mut();
  // Topology-affecting faults also hint the seeder's incremental placer:
  // the touched switches are dirty for the next re-placement even before
  // failure detection (or anything else) changes their placement-visible
  // content.
  switch (e.kind) {
    case sim::FaultKind::kLinkDown:
      topo.set_link_state(e.a, e.b, false);
      system_.seeder().on_topology_change(e.a);
      system_.seeder().on_topology_change(e.b);
      break;
    case sim::FaultKind::kLinkUp:
      topo.set_link_state(e.a, e.b, true);
      system_.seeder().on_topology_change(e.a);
      system_.seeder().on_topology_change(e.b);
      break;
    case sim::FaultKind::kSwitchCrash: {
      asic::SwitchChassis& ch = system_.chassis(e.a);
      if (!ch.powered()) break;  // random plans may double-crash; idempotent
      // The soil process dies first (while its samplers can still be torn
      // down), then the hardware goes dark and the node leaves the fabric.
      system_.soil(e.a).crash();
      ch.power_off();
      topo.set_node_state(e.a, false);
      system_.seeder().on_topology_change(e.a);
      break;
    }
    case sim::FaultKind::kSwitchReboot: {
      asic::SwitchChassis& ch = system_.chassis(e.a);
      if (ch.powered()) break;
      ch.power_on();
      topo.set_node_state(e.a, true);
      system_.seeder().on_topology_change(e.a);
      break;
    }
    case sim::FaultKind::kPollLossStart:
      system_.chassis(e.a).pcie().set_loss_rate(e.param);
      break;
    case sim::FaultKind::kPollLossStop:
      system_.chassis(e.a).pcie().set_loss_rate(0);
      break;
  }
  // Each fault refreshes the dump, so the file on disk always covers the
  // most recent injection when a run is inspected post-mortem.
  if (flight_armed_)
    tel.flight().trigger("chaos." + sim::to_string(e.kind));
}

}  // namespace farm::core
