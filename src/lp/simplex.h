// Primal simplex solvers for the placement LPs.
//
// Two implementations share one entry point:
//   * kRevisedSparse (default) — revised simplex over a sparse column
//     store with bounded variables (revised.cpp). Upper bounds are
//     handled implicitly (nonbasic-at-upper status + bound flips), so a
//     model with n box-bounded variables costs n fewer rows than the
//     dense formulation, and each pivot touches O(nnz + m²) instead of
//     the full dense tableau.
//   * kDenseTableau — the original dense two-phase tableau, kept as a
//     cross-check oracle (the equivalence property tests solve every
//     instance both ways).
//
// Both solve the continuous relaxation of placement models and the
// per-switch resource-redistribution LPs of Algorithm 1 (step 3), and
// both refuse oversized instances through the same exceeds_cell_budget
// predicate — an oversized instance aborts against the deadline exactly
// like a timed-out solver run.
#pragma once

#include "lp/model.h"

namespace farm::lp {

enum class LpAlgorithm {
  kRevisedSparse,  // sparse column store + bounded variables (default)
  kDenseTableau,   // dense two-phase tableau (oracle / fallback)
};

struct LpOptions {
  // Wall-clock budget; exceeded ⇒ status kTimeLimit.
  double deadline_seconds = kInf;
  std::uint64_t max_iterations = 10'000'000;
  // Refuse instances whose dense-equivalent tableau would exceed this many
  // cells; the returned status is kTimeLimit (treated as "solver gave
  // up"), keeping large-scale MILP baseline behaviour honest instead of
  // thrashing. Both algorithms reject through the same predicate with the
  // same dense-equivalent dimensions, so the choice of algorithm never
  // changes which instances are refused.
  std::size_t max_tableau_cells = 64'000'000;
  LpAlgorithm algorithm = LpAlgorithm::kRevisedSparse;
};

// Single size guard shared by every solver entry point: true when a
// working set of `rows` rows by `cols_excl_rhs` columns (plus the rhs
// column) exceeds `max_cells`. Computed overflow-safe — saturates instead
// of wrapping — so a pathological model cannot sneak past the guard.
bool exceeds_cell_budget(std::size_t rows, std::size_t cols_excl_rhs,
                         std::size_t max_cells);

// Integrality markers in the model are ignored (continuous relaxation).
Solution solve_lp(const Model& model, const LpOptions& options = {});

}  // namespace farm::lp
