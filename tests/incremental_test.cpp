// IncrementalPlacer: delta solves spliced from the SolveMemo must be
// bit-identical to from-scratch Algorithm 1 — not close, identical — at
// any thread count, across arbitrary sequences of seed arrivals,
// departures, switch failures/recoveries and capacity changes. Also pins
// the fallback triggers: cold start, delta-fraction gate, and splice
// validation (exercised via a deliberately poisoned cache).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "placement/generator.h"
#include "placement/heuristic.h"
#include "placement/incremental.h"
#include "util/pool.h"
#include "util/rng.h"

namespace farm::placement {
namespace {

// Exact equality, every double compared bitwise. lp_solves is excluded by
// contract (cache misses are scheduling-dependent under a memo).
void expect_identical(const PlacementResult& a, const PlacementResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.placements.size(), b.placements.size()) << what;
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    const auto& x = a.placements[i];
    const auto& y = b.placements[i];
    EXPECT_EQ(x.seed, y.seed) << what << " entry " << i;
    EXPECT_EQ(x.node, y.node) << what << " entry " << i;
    EXPECT_EQ(x.variant, y.variant) << what << " entry " << i;
    EXPECT_EQ(x.utility, y.utility) << what << " entry " << i;
    EXPECT_EQ(x.alloc.vCPU, y.alloc.vCPU) << what << " entry " << i;
    EXPECT_EQ(x.alloc.RAM, y.alloc.RAM) << what << " entry " << i;
    EXPECT_EQ(x.alloc.TCAM, y.alloc.TCAM) << what << " entry " << i;
    EXPECT_EQ(x.alloc.PCIe, y.alloc.PCIe) << what << " entry " << i;
  }
  EXPECT_EQ(a.total_utility, b.total_utility) << what;
}

PlacementProblem base_problem(std::uint64_t seed) {
  GeneratorSpec spec;
  spec.n_switches = 12;
  spec.n_tasks = 3;
  spec.seeds_per_task = 10;
  spec.seed = seed;
  return generate_problem(spec);
}

// One deterministic mutation per step, cycling through the event kinds the
// seeder produces: arrivals, departures, switch failure/recovery, capacity
// drift, and current-placement drift.
void mutate(PlacementProblem& p, std::vector<SwitchModel>& failed,
            util::Rng& rng, int step) {
  switch (step % 6) {
    case 0: {  // seed arrival: clone an existing seed under a new id
      const SeedModel& src =
          p.seeds[rng.next_below(p.seeds.size())];
      SeedModel s = src;
      s.id = "arrival-" + std::to_string(step);
      p.seeds.push_back(std::move(s));
      break;
    }
    case 1: {  // seed departure
      std::size_t i = rng.next_below(p.seeds.size());
      p.current_placement.erase(p.seeds[i].id);
      p.current_alloc.erase(p.seeds[i].id);
      p.seeds.erase(p.seeds.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
    case 2: {  // switch failure
      if (p.switches.size() <= 2) break;
      std::size_t i = rng.next_below(p.switches.size());
      failed.push_back(p.switches[i]);
      p.switches.erase(p.switches.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
    case 3: {  // switch recovery
      if (failed.empty()) break;
      p.switches.push_back(failed.back());
      failed.pop_back();
      break;
    }
    case 4: {  // capacity drift on one switch
      SwitchModel& sw = p.switches[rng.next_below(p.switches.size())];
      sw.capacity.vCPU *= 0.9;
      sw.capacity.RAM *= 0.95;
      break;
    }
    default: {  // current-placement drift: a seed moved outside our control
      const SeedModel& s = p.seeds[rng.next_below(p.seeds.size())];
      if (!s.candidates.empty())
        p.current_placement[s.id] =
            s.candidates[rng.next_below(s.candidates.size())];
      break;
    }
  }
}

TEST(IncrementalPlacerTest, ColdResolveMatchesFullSolveAndReportsCold) {
  auto problem = base_problem(1);
  IncrementalPlacer placer;
  auto inc = placer.resolve(problem);
  EXPECT_FALSE(placer.last_stats().incremental);
  EXPECT_EQ(placer.last_stats().fallback_reason, "cold");
  auto full = solve_heuristic(problem, placer.options().heuristic);
  expect_identical(inc, full, "cold resolve");
}

TEST(IncrementalPlacerTest, DeltaResolveAfterSingleArrivalIsIncremental) {
  auto problem = base_problem(2);
  IncrementalPlacer placer;
  placer.resolve(problem);

  SeedModel extra = problem.seeds.front();
  extra.id = "late-arrival";
  extra.candidates.resize(1);  // touches one switch
  problem.seeds.push_back(extra);

  auto inc = placer.resolve(problem);
  const auto& st = placer.last_stats();
  EXPECT_TRUE(st.incremental);
  EXPECT_FALSE(st.fell_back);
  EXPECT_GT(st.dirty_switches, 0u);
  EXPECT_LE(static_cast<double>(st.dirty_switches),
            0.25 * static_cast<double>(st.total_switches) + 1);
  EXPECT_GT(st.cache_hits, 0u) << "clean switches must splice cached LPs";
  expect_identical(inc, solve_heuristic(problem, placer.options().heuristic),
                   "single arrival");
}

// The property suite from the issue: random arrival/departure/failure
// sequences, incremental vs from-scratch, at FARM_THREADS ∈ {1, 4, 16}.
TEST(IncrementalPlacerTest, BitIdenticalAcrossRandomSequencesAt1_4_16Threads) {
  constexpr int kSteps = 12;
  std::vector<std::vector<PlacementResult>> per_thread_results;
  for (int threads : {1, 4, 16}) {
    util::ScopedThreads scoped(threads);
    auto problem = base_problem(3);
    std::vector<SwitchModel> failed;
    util::Rng rng(99);  // same sequence at every thread count
    IncrementalOptions opts;
    opts.max_delta_fraction = 0.5;  // let most steps take the delta path
    IncrementalPlacer placer(opts);
    std::vector<PlacementResult> results;
    bool any_incremental = false;
    for (int step = 0; step < kSteps; ++step) {
      auto inc = placer.resolve(problem);
      any_incremental |= placer.last_stats().incremental;
      expect_identical(inc, solve_heuristic(problem, opts.heuristic),
                       "threads=" + std::to_string(threads) + " step=" +
                           std::to_string(step));
      results.push_back(std::move(inc));
      mutate(problem, failed, rng, step);
    }
    EXPECT_TRUE(any_incremental)
        << "sequence never exercised the delta path at threads=" << threads;
    per_thread_results.push_back(std::move(results));
  }
  for (std::size_t t = 1; t < per_thread_results.size(); ++t) {
    ASSERT_EQ(per_thread_results[t].size(), per_thread_results[0].size());
    for (std::size_t i = 0; i < per_thread_results[t].size(); ++i)
      expect_identical(per_thread_results[t][i], per_thread_results[0][i],
                       "cross-thread step " + std::to_string(i));
  }
}

TEST(IncrementalPlacerTest, DeltaFractionZeroForcesFullSolveFallback) {
  auto problem = base_problem(4);
  IncrementalOptions opts;
  opts.max_delta_fraction = 0;
  IncrementalPlacer placer(opts);
  placer.resolve(problem);

  problem.switches.front().capacity.vCPU *= 0.5;  // any dirt at all
  auto r = placer.resolve(problem);
  const auto& st = placer.last_stats();
  EXPECT_TRUE(st.fell_back);
  EXPECT_FALSE(st.incremental);
  EXPECT_EQ(st.fallback_reason, "delta_fraction");
  expect_identical(r, solve_heuristic(problem, opts.heuristic),
                   "fallback result");
}

TEST(IncrementalPlacerTest, ExternalDirtyHintKeepsResultIdentical) {
  auto problem = base_problem(5);
  IncrementalPlacer placer;
  placer.resolve(problem);

  placer.mark_dirty(problem.switches.front().node);
  auto r = placer.resolve(problem);  // problem itself unchanged
  EXPECT_TRUE(placer.last_stats().incremental);
  EXPECT_EQ(placer.last_stats().dirty_switches, 1u);
  expect_identical(r, solve_heuristic(problem, placer.options().heuristic),
                   "hint-only resolve");

  // The hint is consumed: the next resolve sees a clean fabric.
  placer.resolve(problem);
  EXPECT_EQ(placer.last_stats().dirty_switches, 0u);
}

TEST(IncrementalPlacerTest, PoisonedCacheTriggersValidationFallback) {
  auto problem = base_problem(6);
  IncrementalOptions opts;
  opts.heuristic.enable_migration_pass = false;  // keys stable across runs
  IncrementalPlacer placer(opts);
  placer.resolve(problem);

  // Corrupt every cached switch-LP entry with allocations far beyond any
  // capacity: the spliced result must now violate (C2), and the placer
  // must notice and repair itself with a full solve.
  for (std::size_t n = 1; n <= 16; ++n) {
    SwitchLpResult fake;
    fake.utility = 1;
    fake.allocs.assign(n, ResourcesValue{1e6, 1e6, 1e6, 1e6});
    fake.utilities.assign(n, 1);
    placer.memo_for_testing().poison_switch_entries_for_testing(fake);
  }

  placer.mark_dirty(problem.switches.front().node);
  auto r = placer.resolve(problem);
  const auto& st = placer.last_stats();
  EXPECT_TRUE(st.fell_back);
  EXPECT_EQ(st.fallback_reason, "validation");
  EXPECT_FALSE(st.incremental);
  // The repaired result is correct and validates.
  expect_identical(r, solve_heuristic(problem, opts.heuristic),
                   "post-poison repair");
  EXPECT_TRUE(validate_placement(problem, r).empty());
}

TEST(IncrementalPlacerTest, InvalidateForcesColdResolve) {
  auto problem = base_problem(7);
  IncrementalPlacer placer;
  placer.resolve(problem);
  placer.invalidate();
  auto r = placer.resolve(problem);
  EXPECT_EQ(placer.last_stats().fallback_reason, "cold");
  expect_identical(r, solve_heuristic(problem, placer.options().heuristic),
                   "post-invalidate");
}

TEST(IncrementalPlacerTest, PodExpansionDirtiesWholePod) {
  auto problem = base_problem(8);
  IncrementalOptions opts;
  opts.max_delta_fraction = 1.0;
  // Two pods: switches split by node parity.
  opts.pod_of = [](net::NodeId n) { return static_cast<int>(n % 2); };
  IncrementalPlacer placer(opts);
  placer.resolve(problem);

  placer.mark_dirty(problem.switches.front().node);
  auto r = placer.resolve(problem);
  const auto& st = placer.last_stats();
  // Every same-pod switch is dirty, not just the hinted one.
  std::size_t pod_size = 0;
  const int pod = opts.pod_of(problem.switches.front().node);
  for (const auto& sw : problem.switches)
    if (opts.pod_of(sw.node) == pod) ++pod_size;
  EXPECT_EQ(st.dirty_switches, pod_size);
  expect_identical(r, solve_heuristic(problem, opts.heuristic),
                   "pod expansion");
}

}  // namespace
}  // namespace farm::placement
