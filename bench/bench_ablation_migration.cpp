// Ablation: the migration pass of Algorithm 1 (steps 4-5).
//
// Starting from a deliberately skewed current placement (everything packed
// onto a few switches — e.g. after a partial fabric outage healed), re-run
// the optimizer with and without the migration pass. The pass must recover
// utility; the residue accounting must keep every intermediate state
// feasible (validated).
#include <cstdio>

#include "bench_json.h"
#include "placement/generator.h"
#include "placement/heuristic.h"

using namespace farm::placement;

int main() {
  farm::bench::BenchJson json("ablation_migration");
  std::printf("Ablation — migration pass of Algorithm 1\n\n");
  std::printf("%6s | %14s %14s %10s\n", "seeds", "MU(no-migr)", "MU(migr)",
              "gain");
  bool ok = true;
  for (int seeds_per_task : {10, 20, 40}) {
    GeneratorSpec spec;
    spec.n_switches = 24;
    spec.n_tasks = 6;
    spec.seeds_per_task = seeds_per_task;
    spec.seed = 5;
    auto problem = generate_problem(spec);
    // Skew: everything currently on the first 4 switches (where allowed).
    for (auto& s : problem.seeds) {
      for (auto n : s.candidates)
        if (n < 4) {
          problem.current_placement[s.id] = n;
          problem.current_alloc[s.id] = ResourcesValue{0.2, 32, 4, 0.2};
          break;
        }
    }

    HeuristicOptions no_migr;
    no_migr.enable_migration_pass = false;
    auto base = solve_heuristic(problem, no_migr);
    auto with = solve_heuristic(problem);
    if (!validate_placement(problem, base).empty() ||
        !validate_placement(problem, with).empty()) {
      std::printf("INVALID placement!\n");
      return 1;
    }
    double gain = with.total_utility - base.total_utility;
    std::printf("%6d | %14.1f %14.1f %9.1f%%\n", 6 * seeds_per_task,
                base.total_utility, with.total_utility,
                base.total_utility > 0 ? 100 * gain / base.total_utility : 0);
    json.record("utility_no_migration", base.total_utility, "MU",
                {farm::bench::param("seeds", 6 * seeds_per_task)});
    json.record("utility_with_migration", with.total_utility, "MU",
                {farm::bench::param("seeds", 6 * seeds_per_task)});
    ok &= with.total_utility >= base.total_utility - 1e-6;
  }
  std::printf("\nmigration pass never loses utility: %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
