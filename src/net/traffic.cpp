#include "net/traffic.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace farm::net {

namespace {

constexpr TimePoint forever() {
  return TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
}

// Picks a random host address; topology must contain at least one host.
Ipv4 random_host(const Topology& topo, Rng& rng) {
  auto hosts = topo.hosts();
  FARM_CHECK_MSG(!hosts.empty(), "workload requires hosts in the topology");
  NodeId id = hosts[rng.next_below(hosts.size())];
  return *topo.node(id).address;
}

std::uint16_t ephemeral_port(Rng& rng) {
  return static_cast<std::uint16_t>(rng.next_int(32768, 60999));
}

}  // namespace

void FlowSchedule::add(TimePoint start, TimePoint end, FlowSpec spec) {
  FARM_CHECK(start < end);
  flows_.push_back({start, end, std::move(spec)});
}

void FlowSchedule::add_forever(TimePoint start, FlowSpec spec) {
  flows_.push_back({start, forever(), std::move(spec)});
}

std::vector<FlowSpec> FlowSchedule::active_at(TimePoint t) const {
  std::vector<FlowSpec> out;
  for (const auto& f : flows_)
    if (f.start <= t && t < f.end) out.push_back(f.spec);
  return out;
}

void FlowSchedule::append(const FlowSchedule& other) {
  flows_.insert(flows_.end(), other.flows_.begin(), other.flows_.end());
}

FlowSchedule background_traffic(const Topology& topo, Rng& rng, int n_flows,
                                double mean_rate_bps, Duration duration) {
  FlowSchedule s;
  for (int i = 0; i < n_flows; ++i) {
    Ipv4 src = random_host(topo, rng);
    Ipv4 dst = random_host(topo, rng);
    if (src == dst) continue;
    FlowSpec spec;
    spec.key = {src, dst, ephemeral_port(rng),
                static_cast<std::uint16_t>(rng.next_int(1, 1023)),
                Proto::kTcp};
    spec.rate_bps = rng.next_exponential(mean_rate_bps);
    spec.flags = {.syn = false, .ack = true};
    s.add(TimePoint::origin(), TimePoint::origin() + duration, spec);
  }
  return s;
}

FlowSchedule heavy_hitter_workload(const Topology& topo, Rng& rng,
                                   double hh_ratio, double hh_rate_bps,
                                   Duration change_period,
                                   Duration duration) {
  FARM_CHECK(hh_ratio >= 0 && hh_ratio <= 1);
  FlowSchedule s;
  auto hosts = topo.hosts();
  FARM_CHECK(hosts.size() >= 2);
  std::size_t n_hh = std::max<std::size_t>(
      1, static_cast<std::size_t>(hh_ratio * static_cast<double>(hosts.size())));
  TimePoint t = TimePoint::origin();
  TimePoint end = t + duration;
  while (t < end) {
    TimePoint epoch_end = std::min(t + change_period, end);
    // Draw a fresh HH set for this epoch.
    for (std::size_t i = 0; i < n_hh; ++i) {
      Ipv4 src = random_host(topo, rng);
      Ipv4 dst = random_host(topo, rng);
      if (src == dst) continue;
      FlowSpec spec;
      spec.key = {src, dst, ephemeral_port(rng), 443, Proto::kTcp};
      spec.rate_bps = hh_rate_bps * rng.next_double(0.8, 1.2);
      spec.packet_bytes = 1400;
      spec.flags = {.ack = true};
      s.add(t, epoch_end, spec);
    }
    t = epoch_end;
  }
  return s;
}

FlowSchedule ddos_attack(const Topology& topo, Rng& rng, Ipv4 victim,
                         int n_sources, double per_source_rate_bps,
                         TimePoint start, Duration duration) {
  FlowSchedule s;
  for (int i = 0; i < n_sources; ++i) {
    FlowSpec spec;
    spec.key = {random_host(topo, rng), victim, ephemeral_port(rng), 80,
                Proto::kUdp};
    spec.rate_bps = per_source_rate_bps;
    spec.packet_bytes = 512;
    s.add(start, start + duration, spec);
  }
  return s;
}

FlowSchedule superspreader(const Topology& topo, Rng& rng, Ipv4 source,
                           int n_destinations, double per_flow_rate_bps,
                           TimePoint start, Duration duration) {
  FlowSchedule s;
  auto hosts = topo.hosts();
  for (int i = 0; i < n_destinations; ++i) {
    Ipv4 dst = *topo.node(hosts[rng.next_below(hosts.size())]).address;
    if (dst == source) continue;
    FlowSpec spec;
    spec.key = {source, dst, ephemeral_port(rng),
                static_cast<std::uint16_t>(rng.next_int(1, 1023)),
                Proto::kTcp};
    spec.rate_bps = per_flow_rate_bps;
    spec.flags = {.syn = true};
    s.add(start, start + duration, spec);
  }
  return s;
}

FlowSchedule port_scan(Ipv4 source, Ipv4 target, std::uint16_t first_port,
                       int n_ports, double probe_rate_bps, TimePoint start,
                       Duration duration) {
  FlowSchedule s;
  Duration per_port = duration / std::max(1, n_ports);
  TimePoint t = start;
  for (int i = 0; i < n_ports; ++i) {
    FlowSpec spec;
    spec.key = {source, target, 41000,
                static_cast<std::uint16_t>(first_port + i), Proto::kTcp};
    spec.rate_bps = probe_rate_bps;
    spec.packet_bytes = 60;
    spec.flags = {.syn = true};
    s.add(t, t + per_port, spec);
    t += per_port;
  }
  return s;
}

FlowSchedule syn_flood(const Topology& topo, Rng& rng, Ipv4 victim,
                       std::uint16_t service_port, int n_sources,
                       double per_source_rate_bps, TimePoint start,
                       Duration duration) {
  FlowSchedule s;
  for (int i = 0; i < n_sources; ++i) {
    FlowSpec spec;
    spec.key = {random_host(topo, rng), victim, ephemeral_port(rng),
                service_port, Proto::kTcp};
    spec.rate_bps = per_source_rate_bps;
    spec.packet_bytes = 60;
    spec.flags = {.syn = true};
    s.add(start, start + duration, spec);
  }
  return s;
}

FlowSchedule ssh_brute_force(Ipv4 attacker, Ipv4 target, int attempts,
                             Duration attempt_interval, TimePoint start) {
  FlowSchedule s;
  TimePoint t = start;
  for (int i = 0; i < attempts; ++i) {
    FlowSpec spec;
    spec.key = {attacker, target,
                static_cast<std::uint16_t>(40000 + (i % 20000)), 22,
                Proto::kTcp};
    spec.rate_bps = 50e3;  // short authentication exchange
    spec.packet_bytes = 120;
    spec.flags = {.syn = true};
    s.add(t, t + attempt_interval, spec);
    t += attempt_interval;
  }
  return s;
}

FlowSchedule dns_reflection(const Topology& topo, Rng& rng, Ipv4 victim,
                            int n_amplifiers, double per_amp_rate_bps,
                            TimePoint start, Duration duration) {
  FlowSchedule s;
  for (int i = 0; i < n_amplifiers; ++i) {
    FlowSpec spec;
    spec.key = {random_host(topo, rng), victim, 53, ephemeral_port(rng),
                Proto::kUdp};
    spec.rate_bps = per_amp_rate_bps;
    spec.packet_bytes = 3000;  // amplified response
    s.add(start, start + duration, spec);
  }
  return s;
}

FlowSchedule slowloris(const Topology& topo, Rng& rng, Ipv4 victim,
                       int n_connections, double per_conn_rate_bps,
                       TimePoint start, Duration duration) {
  FlowSchedule s;
  for (int i = 0; i < n_connections; ++i) {
    FlowSpec spec;
    spec.key = {random_host(topo, rng), victim, ephemeral_port(rng), 80,
                Proto::kTcp};
    spec.rate_bps = per_conn_rate_bps;  // trickle
    spec.packet_bytes = 40;
    spec.flags = {.ack = true};
    s.add(start, start + duration, spec);
  }
  return s;
}

}  // namespace farm::net
