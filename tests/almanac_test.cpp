// Tests for the Almanac DSL: lexer, parser, compilation (inheritance),
// interpretation, and the §III-B static analyses.
#include <gtest/gtest.h>

#include <optional>

#include "almanac/analysis.h"
#include "almanac/compile.h"
#include "almanac/interp.h"
#include "almanac/lexer.h"
#include "almanac/parser.h"
#include "net/topology.h"

namespace farm::almanac {
namespace {

// ---------------------------------------------------------------------------
// A faithful transcription of the paper's List. 2 (heavy hitter seed) in the
// concrete syntax of this implementation, plus the getHH / setHitterRules
// helpers the paper abstracts.
constexpr const char* kHeavyHitterSource = R"ALM(
func list getHH(stats cur, list prev, long threshold) {
  list hitters;
  long i = 0;
  while (i < stats_size(cur)) {
    long seen = stats_bytes(cur, i);
    long before = 0;
    if (i < list_size(prev)) then { before = to_long(list_get(prev, i)); }
    if (seen - before >= threshold) then {
      list_append(hitters, stats_iface(cur, i));
    }
    i = i + 1;
  }
  return hitters;
}

func list snapshotBytes(stats cur) {
  list out;
  long i = 0;
  while (i < stats_size(cur)) {
    list_append(out, stats_bytes(cur, i));
    i = i + 1;
  }
  return out;
}

func void setHitterRules(list hitters, action hitterAction) {
  long i = 0;
  while (i < list_size(hitters)) {
    addTCAMRule(iface_filter(to_long(list_get(hitters, i))), hitterAction);
    i = i + 1;
  }
}

machine HH {
  place all;
  poll pollStats = Poll {
    .ival = 10/res().PCIe, .what = port ANY
  };
  external long threshold = 1000000;
  action hitterAction;
  list hitters;
  list prevBytes;

  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (pollStats as stats) do {
      hitters = getHH(stats, prevBytes, threshold);
      prevBytes = snapshotBytes(stats);
      if (not is_list_empty(hitters)) then {
        transit HHdetected;
      }
    }
  }
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      send hitters to harvester;
      setHitterRules(hitters, hitterAction);
      transit observe;
    }
  }
  when (recv long newTh from harvester)
  do { threshold = newTh; }
  when (recv action hitAct from harvester)
  do { hitterAction = hitAct; }
}
)ALM";

// A SeedHost fake recording every host interaction.
class FakeHost : public SeedHost {
 public:
  ResourcesValue res{2, 256, 64, 4};
  std::vector<asic::TcamRule> added_rules;
  std::vector<net::Filter> removed;
  std::vector<std::pair<Value, SendTarget>> sent;
  std::vector<std::string> execs;
  std::optional<std::string> transit;
  std::vector<std::string> trigger_updates;
  std::int64_t now = 0;

  ResourcesValue resources() override { return res; }
  void add_tcam_rule(const asic::TcamRule& rule) override {
    added_rules.push_back(rule);
  }
  void remove_tcam_rule(const net::Filter& pattern) override {
    removed.push_back(pattern);
  }
  std::optional<asic::TcamRule> get_tcam_rule(
      const net::Filter& pattern) override {
    for (const auto& r : added_rules)
      if (r.pattern.canonical_key() == pattern.canonical_key()) return r;
    return std::nullopt;
  }
  void send(const Value& payload, const SendTarget& target) override {
    sent.emplace_back(payload, target);
  }
  void exec(const std::string& command) override { execs.push_back(command); }
  void request_transit(const std::string& state) override { transit = state; }
  void trigger_updated(const std::string& var) override {
    trigger_updates.push_back(var);
  }
  std::int64_t switch_id() override { return 7; }
  std::int64_t now_ms() override { return now; }
  void log(const std::string&) override {}
};

// Helper: parse + compile a machine, keeping the Program alive.
struct Compiled {
  Program program;
  CompiledMachine machine;
};

Compiled compile(const std::string& src, const std::string& name) {
  Compiled c{parse_program(src), {}};
  c.machine = compile_machine(c.program, name);
  return c;
}

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, TokenizesRepresentativeInput) {
  auto toks = lex("machine HH { poll x = 10/res().PCIe; } // comment");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_TRUE(toks[0].is_ident("machine"));
  EXPECT_TRUE(toks[1].is_ident("HH"));
  EXPECT_TRUE(toks[2].is_punct("{"));
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
}

TEST(LexerTest, NumbersIntsAndFloats) {
  auto toks = lex("42 3.5 1e3 2.5e-2");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.5);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1000);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 0.025);
}

TEST(LexerTest, DotAfterNumberIsFieldAccessNotDecimal) {
  // res().PCIe after an int: `10/res().PCIe` must keep '.' separate.
  auto toks = lex("10 .PCIe");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_TRUE(toks[1].is_punct("."));
}

TEST(LexerTest, StringEscapes) {
  auto toks = lex(R"("a\"b\n")");
  EXPECT_EQ(toks[0].text, "a\"b\n");
}

TEST(LexerTest, TwoCharOperators) {
  auto toks = lex("== <= >= <> < >");
  EXPECT_TRUE(toks[0].is_punct("=="));
  EXPECT_TRUE(toks[1].is_punct("<="));
  EXPECT_TRUE(toks[2].is_punct(">="));
  EXPECT_TRUE(toks[3].is_punct("<>"));
  EXPECT_TRUE(toks[4].is_punct("<"));
  EXPECT_TRUE(toks[5].is_punct(">"));
}

TEST(LexerTest, BlockComments) {
  auto toks = lex("a /* x \n y */ b");
  EXPECT_TRUE(toks[0].is_ident("a"));
  EXPECT_TRUE(toks[1].is_ident("b"));
}

TEST(LexerTest, ThrowsOnUnterminatedString) {
  EXPECT_THROW(lex("\"abc"), LexError);
}

// --- Parser ------------------------------------------------------------------

TEST(ParserTest, ParsesHeavyHitterProgram) {
  Program p = parse_program(kHeavyHitterSource);
  EXPECT_EQ(p.functions.size(), 3u);
  ASSERT_EQ(p.machines.size(), 1u);
  const MachineDecl& m = p.machines[0];
  EXPECT_EQ(m.name, "HH");
  EXPECT_EQ(m.places.size(), 1u);
  EXPECT_EQ(m.states.size(), 2u);
  EXPECT_EQ(m.machine_events.size(), 2u);
  // pollStats, threshold, hitterAction, hitters, prevBytes.
  EXPECT_EQ(m.vars.size(), 5u);
}

TEST(ParserTest, ExternalAndTriggerFlags) {
  Program p = parse_program(kHeavyHitterSource);
  const auto& vars = p.machines[0].vars;
  EXPECT_TRUE(vars[0].trigger.has_value());
  EXPECT_EQ(*vars[0].trigger, TriggerType::kPoll);
  EXPECT_TRUE(vars[1].external);
  EXPECT_EQ(vars[1].name, "threshold");
}

TEST(ParserTest, PlaceDirectiveForms) {
  Program p = parse_program(R"(
    machine M {
      place all;
      place any 3, 8;
      place any receiver srcIP "10.1.1.4" and dstIP "10.0.1.0/24" range == 1;
      place all midpoint range == 0;
      state s { }
    }
  )");
  const auto& pls = p.machines[0].places;
  ASSERT_EQ(pls.size(), 4u);
  EXPECT_EQ(pls[0].mode, PlaceDirective::Mode::kEverywhere);
  EXPECT_TRUE(pls[0].all);
  EXPECT_EQ(pls[1].mode, PlaceDirective::Mode::kSwitchList);
  EXPECT_FALSE(pls[1].all);
  EXPECT_EQ(pls[1].switch_ids.size(), 2u);
  EXPECT_EQ(pls[2].mode, PlaceDirective::Mode::kRange);
  EXPECT_EQ(pls[2].anchor, PlaceDirective::Anchor::kReceiver);
  EXPECT_TRUE(pls[2].path_filter != nullptr);
  EXPECT_EQ(pls[2].range_op, BinOp::kEq);
  EXPECT_EQ(pls[3].anchor, PlaceDirective::Anchor::kMidpoint);
  EXPECT_TRUE(pls[3].path_filter == nullptr);
}

TEST(ParserTest, EventTriggerKinds) {
  Program p = parse_program(R"(
    machine M {
      state s {
        when (enter) do { }
        when (exit) do { }
        when (realloc) do { }
        when (tick as t) do { }
        when (recv long x from harvester) do { }
        when (recv list l from Other) do { }
      }
      time tick;
    }
  )");
  const auto& evs = p.machines[0].states[0].events;
  ASSERT_EQ(evs.size(), 6u);
  EXPECT_EQ(evs[0].kind, EventDecl::TriggerKind::kEnter);
  EXPECT_EQ(evs[1].kind, EventDecl::TriggerKind::kExit);
  EXPECT_EQ(evs[2].kind, EventDecl::TriggerKind::kRealloc);
  EXPECT_EQ(evs[3].kind, EventDecl::TriggerKind::kVarTrigger);
  EXPECT_EQ(evs[3].var, "tick");
  EXPECT_EQ(evs[3].as_var, "t");
  EXPECT_EQ(evs[4].kind, EventDecl::TriggerKind::kRecv);
  EXPECT_TRUE(evs[4].from_harvester);
  EXPECT_EQ(evs[5].from_machine, "Other");
}

TEST(ParserTest, OperatorPrecedence) {
  // 1 + 2 * 3 == 7 must parse as (1 + (2*3)) == 7.
  Program p = parse_program(R"(
    machine M { bool b; state s { when (enter) do { b = 1 + 2 * 3 == 7; } } }
  )");
  // Evaluate the parsed expression to confirm grouping.
  auto c = compile_machine(p, "M");
  FakeHost host;
  Interpreter interp(c, &host);
  Env env;
  env.define("b", Value(false));
  const auto& actions = c.states[0].events[0]->actions;
  interp.exec(actions, env);
  EXPECT_TRUE(env.find("b")->as_bool());
}

TEST(ParserTest, SyntaxErrorsCarryLocation) {
  try {
    parse_program("machine M { state s { when enter) do {} } }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GT(e.loc().line, 0);
  }
}

TEST(ParserTest, RejectsExternalTrigger) {
  EXPECT_THROW(parse_program("machine M { external poll p; state s {} }"),
               ParseError);
}

// --- Compilation ---------------------------------------------------------------

TEST(CompileTest, FlattensHeavyHitter) {
  auto c = compile(kHeavyHitterSource, "HH");
  EXPECT_EQ(c.machine.initial_state, "observe");
  ASSERT_EQ(c.machine.states.size(), 2u);
  // Machine-level recv handlers are merged into both states.
  const CompiledState* obs = c.machine.state("observe");
  ASSERT_TRUE(obs);
  EXPECT_EQ(obs->events.size(), 3u);  // poll + 2 machine-level recv
  const CompiledState* det = c.machine.state("HHdetected");
  ASSERT_TRUE(det);
  EXPECT_EQ(det->events.size(), 3u);  // enter + 2 machine-level recv
}

TEST(CompileTest, InheritanceOverridesStates) {
  auto c = compile(R"(
    machine Base {
      long x = 1;
      state a { when (enter) do { x = 10; } }
      state b { }
    }
    machine Child extends Base {
      state b { when (enter) do { x = 20; } }
      state c { }
    }
  )",
                   "Child");
  EXPECT_EQ(c.machine.states.size(), 3u);
  EXPECT_EQ(c.machine.initial_state, "a");  // base-most first state
  EXPECT_EQ(c.machine.state("b")->events.size(), 1u);  // overridden
  EXPECT_TRUE(c.machine.var("x"));
}

TEST(CompileTest, RejectsVariableOverride) {
  EXPECT_THROW(compile(R"(
    machine Base { long x; state s { } }
    machine Child extends Base { long x; state s { } }
  )",
                       "Child"),
               CompileError);
}

TEST(CompileTest, RejectsInheritanceCycle) {
  EXPECT_THROW(compile(R"(
    machine A extends B { state s { } }
    machine B extends A { state s { } }
  )",
                       "A"),
               CompileError);
}

TEST(CompileTest, RejectsUnknownParent) {
  EXPECT_THROW(compile("machine A extends Nope { state s { } }", "A"),
               CompileError);
}

TEST(CompileTest, StateEventOverridesMachineEvent) {
  auto c = compile(R"(
    machine M {
      long x = 0;
      state s {
        when (recv long v from harvester) do { x = 1; }
      }
      state t { }
      when (recv long v from harvester) do { x = 2; }
    }
  )",
                   "M");
  EXPECT_EQ(c.machine.state("s")->events.size(), 1u);  // overridden, not both
  EXPECT_EQ(c.machine.state("t")->events.size(), 1u);  // machine-level applies
}

TEST(CompileTest, RejectsBadUtilBody) {
  EXPECT_THROW(compile(R"(
    machine M { state s {
      util (res) { while (true) { return 1; } }
    } }
  )",
                       "M"),
               CompileError);
  EXPECT_THROW(compile(R"(
    machine M { state s {
      util (res) { return getHH(res); }
    } }
  )",
                       "M"),
               CompileError);
}

TEST(CompileTest, RejectsUnknownTransitTarget) {
  EXPECT_THROW(compile(R"(
    machine M { state s { when (enter) do { transit nowhere; } } }
  )",
                       "M"),
               CompileError);
}

TEST(CompileTest, RejectsUninitializedPollVar) {
  EXPECT_THROW(compile("machine M { poll p; state s { } }", "M"),
               CompileError);
}

// --- Interpreter ----------------------------------------------------------------

struct InterpFixture {
  Compiled c;
  FakeHost host;
  std::unique_ptr<Interpreter> interp;
  Env env;  // machine root env

  explicit InterpFixture(const std::string& src, const std::string& name)
      : c(compile(src, name)) {
    interp = std::make_unique<Interpreter>(c.machine, &host);
    for (const auto* v : c.machine.vars) {
      Value init = v->trigger ? Value(TriggerSpec{})
                              : Interpreter::default_value(v->type);
      if (v->init) init = interp->eval(*v->init, env);
      env.define(v->name, std::move(init));
    }
  }

  ExecResult run_event(const std::string& state_name, std::size_t ev_index) {
    const CompiledState* st = c.machine.state(state_name);
    Env scope(&env);
    return interp->exec(st->events[ev_index]->actions, scope);
  }
};

TEST(InterpTest, HeavyHitterDetectsAndReacts) {
  InterpFixture f(kHeavyHitterSource, "HH");

  // First poll: baseline of 500 KB on each port — below threshold delta
  // only because prev is empty… delta = 500K < 1M threshold → no HH.
  StatsValue stats1;
  stats1.entries->push_back({"port0", 0, 0, 500, 500'000});
  stats1.entries->push_back({"port1", 1, 0, 500, 500'000});
  Env scope1(&f.env);
  scope1.define("stats", Value(stats1));
  const auto* observe = f.c.machine.state("observe");
  f.interp->exec(observe->events[0]->actions, scope1);
  EXPECT_FALSE(f.host.transit.has_value());

  // Second poll: port1 delta = 2 MB ≥ 1 MB threshold → HH detected.
  StatsValue stats2;
  stats2.entries->push_back({"port0", 0, 0, 600, 600'000});
  stats2.entries->push_back({"port1", 1, 0, 3000, 2'500'000});
  Env scope2(&f.env);
  scope2.define("stats", Value(stats2));
  f.interp->exec(observe->events[0]->actions, scope2);
  ASSERT_TRUE(f.host.transit.has_value());
  EXPECT_EQ(*f.host.transit, "HHdetected");
  const auto& hitters = *f.env.find("hitters")->as_list();
  ASSERT_EQ(hitters.size(), 1u);
  EXPECT_EQ(hitters[0].as_int(), 1);  // port1

  // Enter HHdetected: sends hitters to harvester, installs TCAM rules,
  // transits back to observe.
  f.host.transit.reset();
  f.run_event("HHdetected", 0);
  ASSERT_EQ(f.host.sent.size(), 1u);
  EXPECT_TRUE(f.host.sent[0].second.to_harvester);
  ASSERT_EQ(f.host.added_rules.size(), 1u);
  EXPECT_EQ(f.host.transit, "observe");
}

TEST(InterpTest, HarvesterRecvUpdatesThreshold) {
  InterpFixture f(kHeavyHitterSource, "HH");
  const auto* observe = f.c.machine.state("observe");
  // Event 1 is the first machine-level recv (long newTh).
  Env scope(&f.env);
  scope.define("newTh", Value(std::int64_t{42}));
  f.interp->exec(observe->events[1]->actions, scope);
  EXPECT_EQ(f.env.find("threshold")->as_int(), 42);
}

TEST(InterpTest, PollIvalUsesResources) {
  InterpFixture f(kHeavyHitterSource, "HH");
  // pollStats.ival = 10/res().PCIe with PCIe = 4 → 2.5 s.
  const auto& trig = f.env.find("pollStats")->as_trigger();
  EXPECT_DOUBLE_EQ(trig.ival_seconds, 2.5);
  EXPECT_EQ(trig.what.iface_footprint(), net::Filter::kAllIfaces);
}

TEST(InterpTest, TriggerReassignmentNotifiesHost) {
  InterpFixture f(R"(
    machine M {
      poll p = Poll { .ival = 1, .what = port ANY };
      state s {
        when (enter) do {
          p = Poll { .ival = 0.5, .what = port ANY };
        }
      }
    }
  )",
                  "M");
  f.run_event("s", 0);
  ASSERT_EQ(f.host.trigger_updates.size(), 1u);
  EXPECT_EQ(f.host.trigger_updates[0], "p");
  EXPECT_DOUBLE_EQ(f.env.find("p")->as_trigger().ival_seconds, 0.5);
}

TEST(InterpTest, FilterExpressionsCombine) {
  InterpFixture f(R"(
    machine M {
      filter f;
      state s {
        when (enter) do {
          f = srcIP "10.1.0.0/16" and (port 80 or port 22);
        }
      }
    }
  )",
                  "M");
  f.run_event("s", 0);
  const auto& filter = f.env.find("f")->as_filter();
  net::PacketHeader h{*net::Ipv4::parse("10.1.2.3"),
                      *net::Ipv4::parse("11.0.0.1"),
                      4000,
                      22,
                      net::Proto::kTcp,
                      {},
                      100};
  EXPECT_TRUE(filter.matches(h));
  h.dst_port = 443;
  EXPECT_FALSE(filter.matches(h));
}

TEST(InterpTest, PacketFieldsAccessible) {
  InterpFixture f(R"(
    machine M {
      probe pr = Probe { .ival = 0.001, .what = port 22 };
      long count = 0;
      string lastSrc;
      state s {
        when (pr as pkt) do {
          if (pkt.syn and pkt.dstPort == 22) then {
            count = count + 1;
            lastSrc = pkt.srcIP;
          }
        }
      }
    }
  )",
                  "M");
  net::PacketHeader h{*net::Ipv4::parse("10.0.0.5"),
                      *net::Ipv4::parse("10.1.0.9"),
                      40000,
                      22,
                      net::Proto::kTcp,
                      {.syn = true},
                      60};
  Env scope(&f.env);
  scope.define("pkt", Value(h));
  const auto* s = f.c.machine.state("s");
  f.interp->exec(s->events[0]->actions, scope);
  EXPECT_EQ(f.env.find("count")->as_int(), 1);
  EXPECT_EQ(f.env.find("lastSrc")->as_string(), "10.0.0.5");
}

TEST(InterpTest, WhileLoopGuardTrips) {
  InterpFixture f(R"(
    machine M { state s { when (enter) do { while (true) { } } } }
  )",
                  "M");
  EXPECT_THROW(f.run_event("s", 0), EvalError);
}

TEST(InterpTest, DivisionByZeroRaises) {
  InterpFixture f(R"(
    machine M { long x; state s { when (enter) do { x = 1/0; } } }
  )",
                  "M");
  EXPECT_THROW(f.run_event("s", 0), EvalError);
}

TEST(InterpTest, UndefinedVariableRaises) {
  InterpFixture f(R"(
    machine M { long x; state s { when (enter) do { x = nope; } } }
  )",
                  "M");
  EXPECT_THROW(f.run_event("s", 0), EvalError);
}

TEST(InterpTest, ExecReachesHost) {
  InterpFixture f(R"(
    machine M { state s { when (enter) do {
      exec("python3 svr.py --iters 10");
    } } }
  )",
                  "M");
  f.run_event("s", 0);
  ASSERT_EQ(f.host.execs.size(), 1u);
  EXPECT_EQ(f.host.execs[0], "python3 svr.py --iters 10");
}

TEST(InterpTest, TcamRuleRoundTrip) {
  InterpFixture f(R"(
    machine M {
      rule r;
      bool found;
      state s { when (enter) do {
        addTCAMRule(Rule { .pattern = port 443, .act = action_drop() });
        r = getTCAMRule(port 443);
        found = r.act == action_drop();
        removeTCAMRule(port 443);
      } }
    }
  )",
                  "M");
  f.run_event("s", 0);
  EXPECT_TRUE(f.env.find("found")->as_bool());
  ASSERT_EQ(f.host.removed.size(), 1u);
}

// --- Utility analysis -------------------------------------------------------

TEST(UtilityAnalysisTest, HeavyHitterObserveState) {
  auto c = compile(kHeavyHitterSource, "HH");
  const CompiledState* obs = c.machine.state("observe");
  ASSERT_TRUE(obs->util);
  auto ua = analyze_utility(*obs->util);
  ASSERT_EQ(ua.variants.size(), 1u);
  const auto& v = ua.variants[0];
  // C^s = {r_vCPU - 1, r_RAM - 100}; u^s = min(r_vCPU, r_PCIe).
  ASSERT_EQ(v.constraints.size(), 2u);
  EXPECT_DOUBLE_EQ(v.constraints[0].c0, -1);
  EXPECT_DOUBLE_EQ(v.constraints[0].coeff[kVCpu], 1);
  EXPECT_DOUBLE_EQ(v.constraints[1].c0, -100);
  EXPECT_DOUBLE_EQ(v.constraints[1].coeff[kRam], 1);
  EXPECT_EQ(v.util_min_terms.size(), 2u);

  EXPECT_TRUE(v.feasible({2, 256, 0, 4}));
  EXPECT_FALSE(v.feasible({0.5, 256, 0, 4}));
  EXPECT_DOUBLE_EQ(v.utility({2, 256, 0, 4}), 2);   // min(2, 4)
  EXPECT_DOUBLE_EQ(v.utility({8, 256, 0, 3}), 3);   // min(8, 3)
}

TEST(UtilityAnalysisTest, ConstantUtility) {
  auto c = compile(kHeavyHitterSource, "HH");
  const CompiledState* det = c.machine.state("HHdetected");
  auto ua = analyze_utility(*det->util);
  ASSERT_EQ(ua.variants.size(), 1u);
  EXPECT_TRUE(ua.variants[0].constraints.empty());
  EXPECT_DOUBLE_EQ(ua.variants[0].utility({0, 0, 0, 0}), 100);
}

TEST(UtilityAnalysisTest, OrConditionSplitsVariants) {
  auto c = compile(R"(
    machine M { state s {
      util (r) {
        if (r.vCPU >= 2 or r.RAM >= 512) then { return 10; }
      }
    } }
  )",
                   "M");
  auto ua = analyze_utility(*c.machine.state("s")->util);
  EXPECT_EQ(ua.variants.size(), 2u);
  EXPECT_DOUBLE_EQ(ua.utility({2, 0, 0, 0}), 10);
  EXPECT_DOUBLE_EQ(ua.utility({0, 512, 0, 0}), 10);
  EXPECT_DOUBLE_EQ(ua.utility({0, 0, 0, 0}), 0);
}

TEST(UtilityAnalysisTest, MultipleIfsYieldMultipleVariants) {
  auto c = compile(R"(
    machine M { state s {
      util (r) {
        if (r.vCPU >= 4) then { return 2 * r.vCPU; }
        if (r.vCPU >= 1) then { return r.vCPU; }
      }
    } }
  )",
                   "M");
  auto ua = analyze_utility(*c.machine.state("s")->util);
  EXPECT_EQ(ua.variants.size(), 2u);
  EXPECT_DOUBLE_EQ(ua.utility({4, 0, 0, 0}), 8);  // best variant wins
  EXPECT_DOUBLE_EQ(ua.utility({2, 0, 0, 0}), 2);
}

TEST(UtilityAnalysisTest, MaxSplitsWithDominanceConstraints) {
  auto c = compile(R"(
    machine M { state s {
      util (r) { return max(r.vCPU, r.PCIe); }
    } }
  )",
                   "M");
  auto ua = analyze_utility(*c.machine.state("s")->util);
  EXPECT_EQ(ua.variants.size(), 2u);
  EXPECT_DOUBLE_EQ(ua.utility({5, 0, 0, 2}), 5);
  EXPECT_DOUBLE_EQ(ua.utility({1, 0, 0, 7}), 7);
}

TEST(UtilityAnalysisTest, RejectsNonlinearProduct) {
  auto c = compile(R"(
    machine M { state s {
      util (r) { return r.vCPU * r.RAM; }
    } }
  )",
                   "M");
  EXPECT_THROW(analyze_utility(*c.machine.state("s")->util), CompileError);
}

TEST(UtilityAnalysisTest, ArithmeticOnMinStaysConcave) {
  auto c = compile(R"(
    machine M { state s {
      util (r) { return 2 * min(r.vCPU, r.PCIe) + 1; }
    } }
  )",
                   "M");
  auto ua = analyze_utility(*c.machine.state("s")->util);
  ASSERT_EQ(ua.variants.size(), 1u);
  EXPECT_DOUBLE_EQ(ua.utility({3, 0, 0, 5}), 7);  // 2*3+1
}

TEST(UtilityAnalysisTest, NestedMinMaxSplitsOnTheMaxOnly) {
  auto c = compile(R"(
    machine M { state s {
      util (r) { return min(r.vCPU, max(r.RAM, r.PCIe)); }
    } }
  )",
                   "M");
  auto ua = analyze_utility(*c.machine.state("s")->util);
  // The inner max or-splits into two alternatives (each carrying its
  // dominance constraint); the outer min stays within each variant as an
  // extra min term.
  ASSERT_EQ(ua.variants.size(), 2u);
  for (const auto& v : ua.variants) {
    EXPECT_EQ(v.util_min_terms.size(), 2u);
    EXPECT_EQ(v.constraints.size(), 1u);  // RAM >= PCIe or PCIe >= RAM
  }
  EXPECT_DOUBLE_EQ(ua.utility({5, 3, 0, 1}), 3);  // min(5, max(3, 1))
  EXPECT_DOUBLE_EQ(ua.utility({2, 1, 0, 9}), 2);  // min(2, max(1, 9))
  EXPECT_DOUBLE_EQ(ua.utility({9, 1, 0, 4}), 4);  // min(9, max(1, 4))
}

TEST(UtilityAnalysisTest, InheritedStateOverridesUtilCallback) {
  // The child's state replaces the parent's wholesale, util callback
  // included: analysis of the flattened machine must see the child's
  // constant 42, not the parent's constrained linear form.
  const char* src = R"(
    machine Base {
      poll p = Poll { .ival = 0.5, .what = port ANY };
      state s {
        util (r) { if (r.vCPU >= 1) then { return r.vCPU; } }
        when (p as x) do { send stats_size(x) to harvester; }
      }
    }
    machine Derived extends Base {
      state s {
        util (r) { return 42; }
        when (p as x) do { send stats_size(x) to harvester; }
      }
    }
  )";
  auto base = compile(src, "Base");
  auto base_ua = analyze_utility(*base.machine.state("s")->util);
  ASSERT_EQ(base_ua.variants.size(), 1u);
  EXPECT_EQ(base_ua.variants[0].constraints.size(), 1u);

  auto derived = compile(src, "Derived");
  auto ua = analyze_utility(*derived.machine.state("s")->util);
  ASSERT_EQ(ua.variants.size(), 1u);
  EXPECT_TRUE(ua.variants[0].constraints.empty());
  EXPECT_DOUBLE_EQ(ua.variants[0].utility({0, 0, 0, 0}), 42);
}

// --- Poll analysis -------------------------------------------------------------

TEST(PollAnalysisTest, InverseLinearIval) {
  auto c = compile(kHeavyHitterSource, "HH");
  Env env;
  Interpreter interp(c.machine, nullptr);
  for (const auto* v : c.machine.vars)
    if (!v->trigger && v->init) env.define(v->name, interp.eval(*v->init, env));
  auto polls = analyze_polls(c.machine, env, {1, 128, 16, 2});
  ASSERT_EQ(polls.size(), 1u);
  const auto& pa = polls[0];
  EXPECT_EQ(pa.var, "pollStats");
  EXPECT_TRUE(pa.inv_linear);
  // ival = 10 / r_PCIe → 1/ival = r_PCIe / 10.
  EXPECT_DOUBLE_EQ(pa.inv_ival.coeff[kPcie], 0.1);
  EXPECT_DOUBLE_EQ(pa.ival_at({0, 0, 0, 4}), 2.5);
}

TEST(PollAnalysisTest, ConstantIvalFallback) {
  auto c = compile(R"(
    machine M {
      poll p = Poll { .ival = 0.01, .what = port 80 };
      state s { }
    }
  )",
                   "M");
  Env env;
  auto polls = analyze_polls(c.machine, env, {1, 1, 1, 1});
  ASSERT_EQ(polls.size(), 1u);
  EXPECT_TRUE(polls[0].inv_linear);  // constants are trivially linear
  EXPECT_DOUBLE_EQ(polls[0].ival_at({0, 0, 0, 0}), 0.01);
  EXPECT_EQ(polls[0].subjects.size(), 1u);
}

TEST(PollAnalysisTest, MissingIvalThrows) {
  // A Poll spec without .ival has no interval function to analyze; the
  // throwing front door reports it (Sickle collects it as PO001).
  auto c = compile(R"(
    machine M {
      poll p = Poll { .what = port 80 };
      state s { }
    }
  )",
                   "M");
  Env env;
  EXPECT_THROW(analyze_polls(c.machine, env, {1, 1, 1, 1}), CompileError);
}

TEST(PollAnalysisTest, SharedSubjectsDetectable) {
  auto c = compile(R"(
    machine M {
      poll a = Poll { .ival = 0.01, .what = port ANY };
      poll b = Poll { .ival = 0.05, .what = port ANY };
      state s { }
    }
  )",
                   "M");
  Env env;
  auto polls = analyze_polls(c.machine, env, {1, 1, 1, 1});
  ASSERT_EQ(polls.size(), 2u);
  EXPECT_EQ(polls[0].subjects, polls[1].subjects);  // aggregation opportunity
}

// --- Placement resolution ---------------------------------------------------

struct PlaceFixture {
  net::SpineLeaf sl =
      net::build_spine_leaf({.spines = 3, .leaves = 2, .hosts_per_leaf = 2});
  net::SdnController ctl{sl.topo};
};

TEST(PlaceResolutionTest, PlaceAllYieldsOneSeedPerSwitch) {
  PlaceFixture fx;
  auto c = compile(kHeavyHitterSource, "HH");
  Env env;
  auto seeds = resolve_places(c.machine, env, fx.ctl);
  EXPECT_EQ(seeds.size(), fx.sl.topo.switches().size());
  for (const auto& s : seeds) EXPECT_EQ(s.candidates.size(), 1u);
}

TEST(PlaceResolutionTest, PlaceAnyYieldsOneSeedAnywhere) {
  PlaceFixture fx;
  auto c = compile("machine M { place any; state s { } }", "M");
  Env env;
  auto seeds = resolve_places(c.machine, env, fx.ctl);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0].candidates.size(), fx.sl.topo.switches().size());
}

TEST(PlaceResolutionTest, SwitchListRestrictsCandidates) {
  PlaceFixture fx;
  auto leaf0 = fx.sl.leaf_switches[0];
  auto leaf1 = fx.sl.leaf_switches[1];
  auto src = "machine M { place any " + std::to_string(leaf0) + ", " +
             std::to_string(leaf1) + "; state s { } }";
  auto c = compile(src, "M");
  Env env;
  auto seeds = resolve_places(c.machine, env, fx.ctl);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0].candidates,
            (std::vector<net::NodeId>{leaf0, leaf1}));
}

TEST(PlaceResolutionTest, MidpointRangeSelectsSpines) {
  PlaceFixture fx;
  // Paths between leaf0 and leaf1 hosts have shape h-leaf-spine-leaf-h; the
  // midpoint at range 0 is the spine.
  auto src = *fx.sl.topo.node(fx.sl.hosts_by_leaf[0][0]).address;
  auto dst = *fx.sl.topo.node(fx.sl.hosts_by_leaf[1][0]).address;
  auto prog = R"(machine M {
      place all midpoint srcIP ")" + src.to_string() +
              R"(" and dstIP ")" + dst.to_string() + R"(" range == 0;
      state s { } })";
  auto c = compile(prog, "M");
  Env env;
  auto seeds = resolve_places(c.machine, env, fx.ctl);
  // 3 ECMP paths → 3 spine singletons.
  EXPECT_EQ(seeds.size(), 3u);
  for (const auto& s : seeds) {
    ASSERT_EQ(s.candidates.size(), 1u);
    EXPECT_TRUE(std::find(fx.sl.spine_switches.begin(),
                          fx.sl.spine_switches.end(),
                          s.candidates[0]) != fx.sl.spine_switches.end());
  }
}

TEST(PlaceResolutionTest, ReceiverRangeSelectsEgressLeaf) {
  PlaceFixture fx;
  auto src = *fx.sl.topo.node(fx.sl.hosts_by_leaf[0][0]).address;
  auto dst = *fx.sl.topo.node(fx.sl.hosts_by_leaf[1][0]).address;
  auto prog = R"(machine M {
      place any receiver srcIP ")" + src.to_string() +
              R"(" and dstIP ")" + dst.to_string() + R"(" range == 1;
      state s { } })";
  auto c = compile(prog, "M");
  Env env;
  auto seeds = resolve_places(c.machine, env, fx.ctl);
  // Node at distance 1 from the receiving host is always leaf1 (same for
  // all ECMP paths → dedup to one seed).
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0].candidates,
            (std::vector<net::NodeId>{fx.sl.leaf_switches[1]}));
}

TEST(PlaceResolutionTest, ExternalVariableInPlacement) {
  PlaceFixture fx;
  auto c = compile("machine M { place any target; external long target = 0; state s { } }",
                   "M");
  Env env;
  env.define("target", Value(static_cast<std::int64_t>(fx.sl.spine_switches[1])));
  auto seeds = resolve_places(c.machine, env, fx.ctl);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0].candidates[0], fx.sl.spine_switches[1]);
}

}  // namespace
}  // namespace farm::almanac
