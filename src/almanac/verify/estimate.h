// Static TCAM/PCIe resource estimation for one compiled machine — the
// numeric core of Sickle's RS pass, exposed so `almanac_tool optimize` and
// bench_winnow can report before/after footprints.
//
// With `facts == nullptr` the TCAM weight is the syntactic estimate the RS
// pass has always used: every `while` is scored at max_ifaces iterations.
// With a Winnow analysis attached, loops the engine proved to run at most
// N times are scored at min(N, max_ifaces) instead — never worse than the
// syntactic score.
#pragma once

#include "almanac/verify/absint.h"
#include "almanac/verify/verify.h"

namespace farm::almanac::verify {

struct ResourceEstimate {
  double tcam_rules = 0;
  // Static worst-case poll bandwidth; pcie_analyzable = false (and 0) when
  // analyze_polls rejects the machine's poll specs.
  double pcie_mbps = 0;
  bool pcie_analyzable = true;
  // `while` loops encountered while weighing, and how many of them carried
  // a Winnow-proven trip bound.
  int loops_scored = 0;
  int loops_bounded = 0;
};

ResourceEstimate estimate_resources(const CompiledMachine& m,
                                    const VerifyOptions& opts,
                                    const absint::Analysis* facts = nullptr);

}  // namespace farm::almanac::verify
