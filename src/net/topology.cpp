#include "net/topology.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace farm::net {

NodeId Topology::add_switch(std::string name) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, NodeKind::kSwitch, std::move(name), {}, {}});
  adj_.emplace_back();
  node_down_.push_back(false);
  return id;
}

NodeId Topology::add_host(std::string name, Ipv4 address) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, NodeKind::kHost, std::move(name), address, {}});
  adj_.emplace_back();
  node_down_.push_back(false);
  return id;
}

void Topology::set_link_state(NodeId a, NodeId b, bool up) {
  FARM_CHECK(a < nodes_.size() && b < nodes_.size() && a != b);
  bool changed = up ? down_links_.erase(link_key(a, b)) > 0
                    : down_links_.insert(link_key(a, b)).second;
  if (changed) ++liveness_version_;
}

bool Topology::link_up(NodeId a, NodeId b) const {
  return !down_links_.count(link_key(a, b));
}

void Topology::set_node_state(NodeId n, bool up) {
  FARM_CHECK(n < nodes_.size());
  if (node_down_[n] != !up) {
    node_down_[n] = !up;
    ++liveness_version_;
  }
}

bool Topology::node_up(NodeId n) const {
  FARM_CHECK(n < nodes_.size());
  return !node_down_[n];
}

bool Topology::edge_usable(NodeId a, NodeId b) const {
  return !node_down_[a] && !node_down_[b] && link_up(a, b);
}

void Topology::add_link(NodeId a, NodeId b) {
  FARM_CHECK(a < nodes_.size() && b < nodes_.size() && a != b);
  auto& na = adj_[a];
  if (std::find(na.begin(), na.end(), b) != na.end()) return;
  na.push_back(b);
  adj_[b].push_back(a);
}

void Topology::assign_prefix(NodeId leaf, Prefix p) {
  FARM_CHECK(leaf < nodes_.size());
  nodes_[leaf].owned_prefixes.push_back(p);
}

const Node& Topology::node(NodeId id) const {
  FARM_CHECK(id < nodes_.size());
  return nodes_[id];
}

const std::vector<NodeId>& Topology::neighbors(NodeId id) const {
  FARM_CHECK(id < adj_.size());
  return adj_[id];
}

std::vector<NodeId> Topology::switches() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_)
    if (n.kind == NodeKind::kSwitch) out.push_back(n.id);
  return out;
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_)
    if (n.kind == NodeKind::kHost) out.push_back(n.id);
  return out;
}

std::optional<NodeId> Topology::host_by_address(Ipv4 ip) const {
  for (const auto& n : nodes_)
    if (n.kind == NodeKind::kHost && n.address && *n.address == ip)
      return n.id;
  return std::nullopt;
}

std::vector<NodeId> Topology::hosts_in(const Prefix& p) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_)
    if (n.kind == NodeKind::kHost && n.address && p.contains(*n.address))
      out.push_back(n.id);
  return out;
}

Path Topology::shortest_path(NodeId from, NodeId to) const {
  FARM_CHECK(from < nodes_.size() && to < nodes_.size());
  if (node_down_[from] || node_down_[to]) return {};
  if (from == to) return {from};
  std::vector<NodeId> prev(nodes_.size(), kInvalidNode);
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<NodeId> q;
  q.push(from);
  seen[from] = true;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (NodeId v : adj_[u]) {
      if (seen[v] || !edge_usable(u, v)) continue;
      seen[v] = true;
      prev[v] = u;
      if (v == to) {
        Path path{to};
        for (NodeId x = to; prev[x] != kInvalidNode; x = prev[x])
          path.push_back(prev[x]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      q.push(v);
    }
  }
  return {};
}

std::vector<Path> Topology::all_shortest_paths(NodeId from, NodeId to) const {
  FARM_CHECK(from < nodes_.size() && to < nodes_.size());
  if (node_down_[from] || node_down_[to]) return {};
  if (from == to) return {{from}};
  // BFS layering, then DFS back-walk over all tight predecessor edges.
  constexpr int kUnreached = -1;
  std::vector<int> dist(nodes_.size(), kUnreached);
  std::vector<std::vector<NodeId>> preds(nodes_.size());
  std::queue<NodeId> q;
  q.push(from);
  dist[from] = 0;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    if (u == to) continue;  // no need to expand past the target
    for (NodeId v : adj_[u]) {
      if (!edge_usable(u, v)) continue;
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        preds[v].push_back(u);
        q.push(v);
      } else if (dist[v] == dist[u] + 1) {
        preds[v].push_back(u);
      }
    }
  }
  if (dist[to] == kUnreached) return {};
  std::vector<Path> out;
  Path cur{to};
  // Iterative DFS with explicit stack of (node, next-pred-index).
  struct Frame {
    NodeId node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack{{to, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.node == from) {
      Path p;
      p.reserve(stack.size());
      for (auto it = stack.rbegin(); it != stack.rend(); ++it)
        p.push_back(it->node);
      out.push_back(std::move(p));
      stack.pop_back();
      continue;
    }
    if (f.next < preds[f.node].size()) {
      NodeId nxt = preds[f.node][f.next++];
      stack.push_back({nxt, 0});
    } else {
      stack.pop_back();
    }
  }
  // Deterministic order for downstream consumers.
  std::sort(out.begin(), out.end());
  return out;
}

SpineLeaf build_spine_leaf(const SpineLeafSpec& spec) {
  FARM_CHECK(spec.spines > 0 && spec.leaves > 0 && spec.hosts_per_leaf >= 0);
  FARM_CHECK_MSG(spec.leaves < 256 && spec.hosts_per_leaf < 255,
                 "addressing scheme supports <256 leaves, <255 hosts/leaf");
  SpineLeaf out;
  for (int s = 0; s < spec.spines; ++s)
    out.spine_switches.push_back(
        out.topo.add_switch("spine" + std::to_string(s)));
  for (int l = 0; l < spec.leaves; ++l) {
    NodeId leaf = out.topo.add_switch("leaf" + std::to_string(l));
    out.leaf_switches.push_back(leaf);
    out.topo.assign_prefix(
        leaf, Prefix(Ipv4(10, static_cast<std::uint8_t>(l), 0, 0), 16));
    for (NodeId spine : out.spine_switches) out.topo.add_link(leaf, spine);
    out.hosts_by_leaf.emplace_back();
    for (int h = 0; h < spec.hosts_per_leaf; ++h) {
      Ipv4 addr(10, static_cast<std::uint8_t>(l),
                static_cast<std::uint8_t>(h + 1), 1);
      NodeId host = out.topo.add_host(
          "h" + std::to_string(l) + "-" + std::to_string(h), addr);
      out.topo.add_link(leaf, host);
      out.hosts_by_leaf.back().push_back(host);
    }
  }
  return out;
}

std::vector<Path> SdnController::paths_matching(const Prefix& src,
                                                const Prefix& dst) const {
  std::vector<Path> out;
  for (NodeId s : topo_.hosts_in(src))
    for (NodeId d : topo_.hosts_in(dst)) {
      if (s == d) continue;
      auto paths = topo_.all_shortest_paths(s, d);
      out.insert(out.end(), paths.begin(), paths.end());
    }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace farm::net
