#include "telemetry/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <vector>

#include "telemetry/hub.h"
#include "util/check.h"
#include "util/log.h"

namespace farm::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Microsecond timestamps as a decimal (chrome trace "ts"/"dur" unit).
std::string us(util::TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(t.count_ns()) / 1e3);
  return buf;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Raw wall-clock nanoseconds as microsecond decimal (Furrow rows).
std::string us_ns(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

// Synthetic layout of one profile subtree (see write_prof_chrome_trace):
// children are placed back to back from the parent's start; the parent's
// self time is the tail left after the last child.
void emit_prof_node(std::ostream& os, const prof::ProfNode& node,
                    std::uint64_t start_ns,
                    const std::function<void()>& sep) {
  sep();
  os << "{\"name\":\"" << json_escape(node.name)
     << "\",\"cat\":\"prof\",\"ph\":\"X\",\"pid\":2,\"tid\":1,\"ts\":"
     << us_ns(start_ns) << ",\"dur\":" << us_ns(node.total_ns)
     << ",\"args\":{\"count\":" << node.count
     << ",\"self_us\":" << us_ns(node.self_ns)
     << ",\"max_us\":" << us_ns(node.max_ns) << "}}";
  std::uint64_t offset = start_ns;
  for (const prof::ProfNode& c : node.children) {
    emit_prof_node(os, c, offset, sep);
    offset += c.total_ns;
  }
}

// The Furrow process row: pid 2 metadata, the call tree on tid 1, counters
// as "C" samples on tid 0. Shared by the standalone profile export and the
// combined hub trace.
void emit_prof_rows(std::ostream& os, const prof::Snapshot& snap,
                    const std::function<void()>& sep) {
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
     << "\"args\":{\"name\":\"farm control plane (wall-clock)\"}}";
  sep();
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,"
     << "\"args\":{\"name\":\"furrow call tree\"}}";
  std::uint64_t offset = 0;
  for (const prof::ProfNode& c : snap.root.children) {
    emit_prof_node(os, c, offset, sep);
    offset += c.total_ns;
  }
  for (const prof::ProfCounter& c : snap.counters) {
    sep();
    os << "{\"name\":\"" << json_escape(c.name)
       << "\",\"cat\":\"prof\",\"ph\":\"C\",\"pid\":2,\"tid\":0,\"ts\":0,"
       << "\"args\":{\"value\":" << c.value << "}}";
  }
}

void collapse_node(std::ostream& os, const prof::ProfNode& node,
                   std::string& path, CollapsedWeight weight) {
  std::size_t saved = path.size();
  if (!path.empty()) path += ';';
  path += node.name;
  os << path << ' '
     << (weight == CollapsedWeight::kSelfNs ? node.self_ns : node.count)
     << '\n';
  for (const prof::ProfNode& c : node.children)
    collapse_node(os, c, path, weight);
  path.resize(saved);
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Hub& hub,
                        const ChromeTraceOptions& options) {
  const Tracer& tracer = hub.tracer();
  const SiloStore& store = hub.events();
  const Registry& reg = hub.registry();
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  os << "{\"traceEvents\":[\n";
  // Track (thread) names, then spans per track. pid 1 = the simulation.
  for (TrackId t = 0; t < tracer.track_count(); ++t) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << (t + 1)
       << ",\"args\":{\"name\":\"" << json_escape(tracer.track_name(t))
       << "\"}}";
    tracer.for_each_span(t, [&](const Span& s) {
      sep();
      os << "{\"name\":\"" << json_escape(s.name)
         << "\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":" << (t + 1)
         << ",\"ts\":" << us(s.begin) << ",\"dur\":"
         << num(static_cast<double>((s.end - s.begin).count_ns()) / 1e3)
         << ",\"args\":{\"depth\":" << s.depth << "}}";
    });
  }
  // Metric events ride on tid 0; counters/gauges as "C" samples so the
  // viewer draws them as series, marks as instant events.
  std::size_t begin = 0;
  if (options.last_events > 0 && store.size() > options.last_events)
    begin = store.size() - options.last_events;
  // For counters chrome expects the running level, not the delta; fold the
  // retained prefix (including rows below `begin`) into per-metric levels
  // in one pass so truncated exports still show correct totals.
  std::vector<double> level(reg.size(), 0);
  std::size_t i = 0;
  store.for_each_ordered([&](const EventRow& r) {
    if (r.kind == EventKind::kAdd && r.metric < level.size())
      level[r.metric] += r.value;
    if (i++ < begin) return;
    const std::string& name = reg.name(r.metric);
    sep();
    if (r.kind == EventKind::kMark) {
      os << "{\"name\":\"" << json_escape(name)
         << "\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,"
         << "\"tid\":0,\"ts\":" << us(r.at) << ",\"args\":{\"value\":"
         << num(r.value) << "}}";
    } else {
      double v = r.kind == EventKind::kAdd && r.metric < level.size()
                     ? level[r.metric]
                     : r.value;
      os << "{\"name\":\"" << json_escape(name)
         << "\",\"cat\":\"metric\",\"ph\":\"C\",\"pid\":1,\"tid\":0,"
         << "\"ts\":" << us(r.at) << ",\"args\":{\"value\":" << num(v)
         << "}}";
    }
  });
  if (options.profile != nullptr && !options.profile->empty())
    emit_prof_rows(os, *options.profile, sep);
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"clock\":\"sim-virtual-time\",\"reason\":\""
     << json_escape(options.reason) << "\",\"events_total\":"
     << store.total_appended() << ",\"events_exported\":"
     << (store.size() - begin) << "}}\n";
}

void write_prof_collapsed(std::ostream& os, const prof::Snapshot& snap,
                          CollapsedWeight weight) {
  std::string path;
  for (const prof::ProfNode& c : snap.root.children)
    collapse_node(os, c, path, weight);
}

void write_prof_chrome_trace(std::ostream& os, const prof::Snapshot& snap,
                             const ChromeTraceOptions& options) {
  bool first = true;
  std::function<void()> sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  os << "{\"traceEvents\":[\n";
  emit_prof_rows(os, snap, sep);
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"clock\":\"wall-clock\",\"reason\":\""
     << json_escape(options.reason) << "\"}}\n";
}

void write_prof_report(std::ostream& os, const prof::Snapshot& snap,
                       std::size_t top_n) {
  if (snap.empty()) {
    os << "profile: (no data — profiler disabled or compiled out)\n";
    return;
  }
  // Flatten to (path, node) rows, ranked by self time; ties break on path
  // so the table is deterministic under the zero test clock.
  struct Row {
    std::string path;
    const prof::ProfNode* node;
  };
  std::vector<Row> rows;
  std::string path;
  std::function<void(const prof::ProfNode&)> flatten =
      [&](const prof::ProfNode& node) {
        std::size_t saved = path.size();
        if (!path.empty()) path += ';';
        path += node.name;
        rows.push_back({path, &node});
        for (const prof::ProfNode& c : node.children) flatten(c);
        path.resize(saved);
      };
  for (const prof::ProfNode& c : snap.root.children) flatten(c);
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.node->self_ns != b.node->self_ns)
      return a.node->self_ns > b.node->self_ns;
    return a.path < b.path;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  char line[256];
  os << "total wall: " << us_ns(snap.root.total_ns) << " us across "
     << snap.root.children.size() << " root scopes\n";
  std::snprintf(line, sizeof(line), "%12s %12s %10s %12s  %s\n", "self(us)",
                "total(us)", "count", "max(us)", "path");
  os << line;
  for (const Row& r : rows) {
    std::snprintf(line, sizeof(line), "%12s %12s %10llu %12s  %s\n",
                  us_ns(r.node->self_ns).c_str(),
                  us_ns(r.node->total_ns).c_str(),
                  static_cast<unsigned long long>(r.node->count),
                  us_ns(r.node->max_ns).c_str(), r.path.c_str());
    os << line;
  }
  if (!snap.counters.empty()) {
    os << "counters:\n";
    for (const prof::ProfCounter& c : snap.counters) {
      std::snprintf(line, sizeof(line), "  %-32s %llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      os << line;
    }
  }
}

void write_csv(std::ostream& os, const Query& query,
               const Registry& registry) {
  os << "time_s,metric,kind,value\n";
  query.for_each([&](const EventRow& r) {
    os << num(r.at.seconds()) << ',' << registry.name(r.metric) << ','
       << to_string(r.kind) << ',' << num(r.value) << '\n';
  });
}

void write_json_series(std::ostream& os, const Query& query,
                       const Registry& registry) {
  os << "[";
  bool first = true;
  query.for_each([&](const EventRow& r) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"t\":" << num(r.at.seconds()) << ",\"metric\":\""
       << json_escape(registry.name(r.metric)) << "\",\"kind\":\""
       << to_string(r.kind) << "\",\"value\":" << num(r.value) << "}";
  });
  os << "\n]\n";
}

}  // namespace farm::telemetry
