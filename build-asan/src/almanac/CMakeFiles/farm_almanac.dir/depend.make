# Empty dependencies file for farm_almanac.
# This may be replaced when dependencies are built.
