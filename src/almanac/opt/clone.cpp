#include "almanac/opt/clone.h"

namespace farm::almanac::opt {

ExprPtr clone_expr(const Expr& e, CloneMap* map) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->loc = e.loc;
  out->literal = e.literal.deep_copy();
  out->name = e.name;
  out->op = e.op;
  out->field_names = e.field_names;
  out->args.reserve(e.args.size());
  for (const auto& a : e.args)
    out->args.push_back(a ? clone_expr(*a, map) : nullptr);
  if (map) map->exprs[&e] = out.get();
  return out;
}

ActionPtr clone_action(const Action& a, CloneMap* map) {
  auto out = std::make_unique<Action>();
  out->kind = a.kind;
  out->loc = a.loc;
  out->target = a.target;
  out->decl_type = a.decl_type;
  out->expr = a.expr ? clone_expr(*a.expr, map) : nullptr;
  out->body = clone_actions(a.body, map);
  out->else_body = clone_actions(a.else_body, map);
  out->to_harvester = a.to_harvester;
  out->to_machine = a.to_machine;
  out->to_dst = a.to_dst ? clone_expr(*a.to_dst, map) : nullptr;
  if (map) map->actions[&a] = out.get();
  return out;
}

std::vector<ActionPtr> clone_actions(const std::vector<ActionPtr>& actions,
                                     CloneMap* map) {
  std::vector<ActionPtr> out;
  out.reserve(actions.size());
  for (const auto& a : actions)
    if (a) out.push_back(clone_action(*a, map));
  return out;
}

VarDecl clone_var(const VarDecl& v, CloneMap* map) {
  VarDecl out;
  out.loc = v.loc;
  out.external = v.external;
  out.type = v.type;
  out.trigger = v.trigger;
  out.name = v.name;
  out.init = v.init ? clone_expr(*v.init, map) : nullptr;
  return out;
}

UtilityDecl clone_util(const UtilityDecl& u, CloneMap* map) {
  UtilityDecl out;
  out.loc = u.loc;
  out.param = u.param;
  out.body = clone_actions(u.body, map);
  return out;
}

EventDecl clone_event(const EventDecl& ev, CloneMap* map) {
  EventDecl out;
  out.loc = ev.loc;
  out.kind = ev.kind;
  out.var = ev.var;
  out.as_var = ev.as_var;
  out.recv_type = ev.recv_type;
  out.recv_var = ev.recv_var;
  out.from_harvester = ev.from_harvester;
  out.from_machine = ev.from_machine;
  out.from_dst = ev.from_dst ? clone_expr(*ev.from_dst, map) : nullptr;
  out.actions = clone_actions(ev.actions, map);
  return out;
}

PlaceDirective clone_place(const PlaceDirective& p, CloneMap* map) {
  PlaceDirective out;
  out.loc = p.loc;
  out.all = p.all;
  out.mode = p.mode;
  out.switch_ids.reserve(p.switch_ids.size());
  for (const auto& e : p.switch_ids)
    out.switch_ids.push_back(e ? clone_expr(*e, map) : nullptr);
  out.anchor = p.anchor;
  out.path_filter = p.path_filter ? clone_expr(*p.path_filter, map) : nullptr;
  out.range_op = p.range_op;
  out.range_value =
      p.range_value ? clone_expr(*p.range_value, map) : nullptr;
  return out;
}

FuncDecl clone_function(const FuncDecl& f, CloneMap* map) {
  FuncDecl out;
  out.loc = f.loc;
  out.return_type = f.return_type;
  out.name = f.name;
  out.params = f.params;
  out.body = clone_actions(f.body, map);
  return out;
}

}  // namespace farm::almanac::opt
