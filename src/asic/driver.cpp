#include "asic/driver.h"

#include <algorithm>

#include "util/check.h"

namespace farm::asic {

TrafficDriver::TrafficDriver(sim::Engine& engine, const net::Topology& topo,
                             std::vector<SwitchChassis*> switch_of_node,
                             net::FlowSchedule schedule, sim::Duration tick)
    : engine_(engine),
      topo_(topo),
      switches_(std::move(switch_of_node)),
      schedule_(std::move(schedule)),
      tick_(tick),
      task_(engine, tick, [this] { on_tick(); }) {
  FARM_CHECK(switches_.size() == topo_.node_count());
}

void TrafficDriver::start() { task_.start(); }
void TrafficDriver::stop() { task_.stop(); }

std::uint64_t TrafficDriver::bytes_delivered_to(net::NodeId host) const {
  auto it = delivered_.find(host);
  return it == delivered_.end() ? 0 : it->second;
}

int TrafficDriver::iface_index(net::NodeId n, net::NodeId nb) const {
  const auto& adj = topo_.neighbors(n);
  auto it = std::find(adj.begin(), adj.end(), nb);
  FARM_CHECK_MSG(it != adj.end(), "iface lookup for non-neighbor");
  return static_cast<int>(it - adj.begin());
}

void TrafficDriver::on_tick() {
  if (topo_.liveness_version() != cached_liveness_) {
    path_cache_.clear();
    cached_liveness_ = topo_.liveness_version();
  }
  for (const auto& flow : schedule_.active_at(engine_.now() - tick_)) {
    auto src = topo_.host_by_address(flow.key.src_ip);
    auto dst = topo_.host_by_address(flow.key.dst_ip);
    if (!src || !dst) continue;  // external endpoints are out of scope

    auto [it, inserted] = path_cache_.try_emplace(flow.key);
    if (inserted) it->second = topo_.shortest_path(*src, *dst);
    const net::Path& path = it->second;
    if (path.empty()) continue;

    net::FlowSpec effective = flow;
    for (std::size_t i = 0; i < path.size(); ++i) {
      SwitchChassis* sw = switches_[path[i]];
      if (!sw) continue;  // hosts
      int in_iface = i > 0 ? iface_index(path[i], path[i - 1]) : -1;
      int out_iface =
          i + 1 < path.size() ? iface_index(path[i], path[i + 1]) : -1;
      effective.rate_bps =
          sw->apply_flow(effective, in_iface, out_iface, tick_);
      if (effective.rate_bps <= 0) break;  // dropped upstream
    }
    if (effective.rate_bps > 0)
      delivered_[*dst] += static_cast<std::uint64_t>(effective.rate_bps *
                                                     tick_.seconds() / 8.0);
  }
}

}  // namespace farm::asic
