#include "almanac/verify/estimate.h"

#include <algorithm>

#include "almanac/analysis.h"
#include "almanac/verify/passes.h"
#include "net/filter.h"

namespace farm::almanac::verify {

namespace {

// Mirrors asic/pcie.cpp's per-entry accounting (see pass_resources.cpp).
constexpr double kPollEntryBytes = 16;

struct TcamWeigher {
  const Program& program;
  int loop_bound;
  const absint::Analysis* facts;
  ResourceEstimate* est;
  std::unordered_set<std::string> in_progress;

  double weigh_expr(const Expr& e, double depth_mult) {
    double w = 0;
    walk_expr(e, [&](const Expr& x) {
      if (x.kind != Expr::Kind::kCall) return;
      if (x.name == "addTCAMRule") {
        w += depth_mult;
      } else if (const FuncDecl* f = program.function(x.name)) {
        // Recursion guard: a cycle contributes no additional installs.
        if (in_progress.insert(x.name).second) {
          w += weigh(f->body, depth_mult);
          in_progress.erase(x.name);
        }
      }
    });
    return w;
  }

  double weigh(const std::vector<ActionPtr>& actions, double depth_mult) {
    double w = 0;
    for (const auto& a : actions) {
      double mult = depth_mult;
      if (a->kind == Action::Kind::kWhile) {
        ++est->loops_scored;
        double bound = loop_bound;
        if (facts) {
          auto it = facts->loop_bounds.find(a.get());
          if (it != facts->loop_bounds.end()) {
            bound = std::min<double>(bound,
                                     static_cast<double>(it->second));
            ++est->loops_bounded;
          }
        }
        mult *= bound;
      }
      if (a->expr) w += weigh_expr(*a->expr, mult);
      if (a->to_dst) w += weigh_expr(*a->to_dst, mult);
      w += weigh(a->body, mult);
      w += weigh(a->else_body, depth_mult);
    }
    return w;
  }
};

}  // namespace

ResourceEstimate estimate_resources(const CompiledMachine& m,
                                    const VerifyOptions& opts,
                                    const absint::Analysis* facts) {
  ResourceEstimate est;

  // TCAM: sum over all dedup'd handlers, each weighed with its own
  // recursion guard — identical to the RS pass at facts == nullptr.
  std::unordered_set<const EventDecl*> seen;
  for (const auto& s : m.states)
    for (const auto* ev : s.events)
      if (seen.insert(ev).second) {
        TcamWeigher w{*m.program, opts.max_ifaces, facts, &est, {}};
        est.tcam_rules += w.weigh(ev->actions, 1.0);
      }

  // PCIe: worst-case static poll bandwidth (same model as the RS pass).
  Env env = build_machine_env(m, opts);
  std::vector<PollAnalysis> polls;
  try {
    polls = analyze_polls(m, env, opts.reference_alloc);
  } catch (const CompileError&) {
    est.pcie_analyzable = false;
    return est;
  } catch (const EvalError&) {
    est.pcie_analyzable = false;
    return est;
  }
  for (const auto& pa : polls) {
    int fp = pa.what.iface_footprint();
    int entries = fp == net::Filter::kAllIfaces ? opts.max_ifaces
                  : fp > 0                      ? fp
                                                : 1;
    ResourcesValue generous = opts.reference_alloc;
    generous.PCIe = opts.pcie_budget_mbps;
    double inv = std::max(pa.inv_ival.eval(opts.reference_alloc),
                          pa.inv_ival.eval(generous));
    if (inv <= 0) continue;
    est.pcie_mbps += inv * entries * kPollEntryBytes * 8.0 / 1e6;
  }
  return est;
}

}  // namespace farm::almanac::verify
