#include "placement/incremental.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "telemetry/prof.h"
#include "util/log.h"

namespace farm::placement {

namespace {

void put_double(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), 8);
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), 8);
}

void put_resources(std::string& out, const ResourcesValue& r) {
  put_double(out, r.vCPU);
  put_double(out, r.RAM);
  put_double(out, r.TCAM);
  put_double(out, r.PCIe);
}

void put_poly(std::string& out, const Poly& p) {
  put_double(out, p.c0);
  for (double c : p.coeff) put_double(out, c);
}

// Full seed content for change detection — unlike the memo's LP tokens
// this includes candidates and task, because a candidate-list change
// shifts the greedy even when the LP content is untouched. Serializes into
// a caller-owned buffer: diff + snapshot touch every seed on every
// resolve, and per-seed string allocations dominate at 100k seeds.
void seed_content(std::string& out, const SeedModel& s) {
  out.clear();
  put_u64(out, s.task.size());
  out += s.task;
  put_u64(out, s.candidates.size());
  for (net::NodeId n : s.candidates)
    out.append(reinterpret_cast<const char*>(&n), sizeof(n));
  put_u64(out, s.variants.size());
  for (const auto& v : s.variants) {
    put_u64(out, v.constraints.size());
    for (const auto& c : v.constraints) put_poly(out, c);
    put_u64(out, v.util_min_terms.size());
    for (const auto& t : v.util_min_terms) put_poly(out, t);
  }
  put_u64(out, s.polls.size());
  for (const auto& p : s.polls) {
    put_u64(out, p.subject.size());
    out += p.subject;
    put_poly(out, p.inv_ival);
  }
}

std::string switch_content(const SwitchModel& sw) {
  std::string out;
  put_resources(out, sw.capacity);
  put_double(out, sw.alpha_poll);
  return out;
}

std::string alloc_content(const ResourcesValue& r) {
  std::string out;
  put_resources(out, r);
  return out;
}

}  // namespace

std::unordered_set<net::NodeId> IncrementalPlacer::dirty_switches(
    const PlacementProblem& problem) const {
  std::unordered_set<net::NodeId> dirty;
  auto mark = [&dirty](net::NodeId n) {
    if (n != net::kInvalidNode) dirty.insert(n);
  };
  auto mark_seed = [&](const std::string& id,
                       const std::vector<net::NodeId>* new_candidates) {
    if (new_candidates)
      for (net::NodeId n : *new_candidates) mark(n);
    auto old_cands = seed_candidates_.find(id);
    if (old_cands != seed_candidates_.end())
      for (net::NodeId n : old_cands->second) mark(n);
    auto cur = placement_snapshot_.find(id);
    if (cur != placement_snapshot_.end()) mark(cur->second);
    auto asg = assigned_snapshot_.find(id);
    if (asg != assigned_snapshot_.end()) mark(asg->second);
  };

  // Switch set / capacity changes.
  std::unordered_set<net::NodeId> present;
  for (const auto& sw : problem.switches) {
    present.insert(sw.node);
    auto it = switch_snapshot_.find(sw.node);
    if (it == switch_snapshot_.end() || it->second != switch_content(sw))
      mark(sw.node);
  }
  for (const auto& [node, _] : switch_snapshot_)
    if (!present.count(node)) mark(node);

  // Seed arrivals / content changes / departures.
  std::unordered_set<std::string_view> seen;
  seen.reserve(problem.seeds.size());
  std::string content;  // reused across seeds
  for (const auto& s : problem.seeds) {
    seen.insert(s.id);
    auto it = seed_snapshot_.find(s.id);
    if (it == seed_snapshot_.end() ||
        (seed_content(content, s), it->second != content))
      mark_seed(s.id, &s.candidates);
  }
  for (const auto& [id, _] : seed_snapshot_)
    if (!seen.count(id)) mark_seed(id, nullptr);

  // Current placement / allocation drift (a seed that moved or was
  // re-allocated outside the placer's control dirties both homes).
  for (const auto& [id, node] : problem.current_placement) {
    auto it = placement_snapshot_.find(id);
    if (it == placement_snapshot_.end()) {
      if (seed_snapshot_.count(id)) mark(node);  // newly placed known seed
      continue;                                  // new seed: already marked
    }
    if (it->second != node) {
      mark(node);
      mark(it->second);
    }
  }
  for (const auto& [id, alloc] : problem.current_alloc) {
    auto it = alloc_snapshot_.find(id);
    if (it != alloc_snapshot_.end() && it->second == alloc_content(alloc))
      continue;
    if (it == alloc_snapshot_.end() && !seed_snapshot_.count(id)) continue;
    auto cur = problem.current_placement.find(id);
    if (cur != problem.current_placement.end()) mark(cur->second);
  }

  // Topology-change hints.
  for (net::NodeId n : external_dirty_) mark(n);

  // Pod expansion: a dirty switch dirties its whole pod.
  if (opt_.pod_of) {
    std::unordered_set<int> pods;
    for (net::NodeId n : dirty) pods.insert(opt_.pod_of(n));
    for (const auto& sw : problem.switches)
      if (pods.count(opt_.pod_of(sw.node))) dirty.insert(sw.node);
  }
  return dirty;
}

void IncrementalPlacer::snapshot(const PlacementProblem& problem,
                                 const PlacementResult& result) {
  // Upsert in place rather than clear()+rebuild: between consecutive
  // resolves almost every entry is unchanged, so reusing map nodes and
  // string capacity keeps the snapshot pass cheap at 100k seeds. Stale
  // entries (departed seeds) only exist when the sizes disagree after the
  // upsert — the erase pass is skipped on the common path.
  std::string buf;
  seed_snapshot_.reserve(problem.seeds.size());
  seed_candidates_.reserve(problem.seeds.size());
  for (const auto& s : problem.seeds) {
    seed_content(buf, s);
    seed_snapshot_[s.id] = buf;
    seed_candidates_[s.id] = s.candidates;
  }
  if (seed_snapshot_.size() != problem.seeds.size()) {
    std::unordered_set<std::string_view> ids;
    ids.reserve(problem.seeds.size());
    for (const auto& s : problem.seeds) ids.insert(s.id);
    auto stale = [&ids](const auto& kv) { return !ids.count(kv.first); };
    std::erase_if(seed_snapshot_, stale);
    std::erase_if(seed_candidates_, stale);
  }

  switch_snapshot_.clear();  // O(switches), not worth upserting
  for (const auto& sw : problem.switches)
    switch_snapshot_[sw.node] = switch_content(sw);

  for (const auto& [id, node] : problem.current_placement)
    placement_snapshot_[id] = node;
  if (placement_snapshot_.size() != problem.current_placement.size())
    std::erase_if(placement_snapshot_, [&problem](const auto& kv) {
      return !problem.current_placement.count(kv.first);
    });

  for (const auto& [id, alloc] : problem.current_alloc)
    alloc_snapshot_[id] = alloc_content(alloc);
  if (alloc_snapshot_.size() != problem.current_alloc.size())
    std::erase_if(alloc_snapshot_, [&problem](const auto& kv) {
      return !problem.current_alloc.count(kv.first);
    });

  for (const auto& e : result.placements) assigned_snapshot_[e.seed] = e.node;
  if (assigned_snapshot_.size() != result.placements.size()) {
    std::unordered_set<std::string_view> ids;
    ids.reserve(result.placements.size());
    for (const auto& e : result.placements) ids.insert(e.seed);
    std::erase_if(assigned_snapshot_,
                  [&ids](const auto& kv) { return !ids.count(kv.first); });
  }

  // Fold the assignment we just produced into the expected fabric state:
  // the caller is about to realize it, and a fabric that matches the plan
  // is not drift. Without this, the first resolve after a cold solve sees
  // every deployed seed as "newly placed" and every allocation as changed,
  // dirties the whole fabric, and falls back — exactly the re-solve storm
  // the Seeder's deferred-reoptimize drain must not pay for.
  for (const auto& e : result.placements) {
    placement_snapshot_[e.seed] = e.node;
    alloc_snapshot_[e.seed] = alloc_content(e.alloc);
  }
  have_snapshot_ = true;
}

void IncrementalPlacer::invalidate() {
  memo_.clear();
  have_snapshot_ = false;
  seed_snapshot_.clear();
  seed_candidates_.clear();
  switch_snapshot_.clear();
  placement_snapshot_.clear();
  assigned_snapshot_.clear();
  alloc_snapshot_.clear();
  external_dirty_.clear();
}

PlacementResult IncrementalPlacer::resolve(const PlacementProblem& problem) {
  FARM_PROF_SCOPE("placement/incremental");
  const bool timing = std::getenv("FARM_INCR_TIMING") != nullptr;
  auto tick = std::chrono::steady_clock::now();
  auto lap = [&](const char* what) {
    if (!timing) return;
    auto now = std::chrono::steady_clock::now();
    std::fprintf(stderr, "[incr] %-12s %7.3fs\n", what,
                 std::chrono::duration<double>(now - tick).count());
    tick = now;
  };
  stats_ = IncrementalStats{};
  stats_.total_switches = problem.switches.size();

  bool delta = false;
  if (!have_snapshot_) {
    stats_.fallback_reason = "cold";
  } else {
    auto dirty = dirty_switches(problem);
    lap("diff");
    stats_.dirty_switches = dirty.size();
    const double fraction =
        problem.switches.empty()
            ? 1.0
            : static_cast<double>(dirty.size()) /
                  static_cast<double>(problem.switches.size());
    if (fraction > opt_.max_delta_fraction) {
      stats_.fell_back = true;
      stats_.fallback_reason = "delta_fraction";
      FARM_PROF_COUNT("placement.incremental.fallbacks", 1);
    } else {
      delta = true;
    }
  }
  external_dirty_.clear();

  const std::uint64_t hits0 = memo_.hits(), misses0 = memo_.misses();
  HeuristicOptions opts = opt_.heuristic;
  opts.memo = &memo_;

  PlacementResult result;
  if (delta) {
    FARM_PROF_COUNT("placement.incremental.delta_solves", 1);
    memo_.prepare(problem);
    lap("prepare");
    result = solve_heuristic(problem, opts);
    lap("solve");
    memo_.finish(opt_.keep_generations);
    stats_.incremental = true;
    if (opt_.validate_splice) {
      auto errors = validate_placement(problem, result);
      lap("validate");
      if (!errors.empty()) {
        // Cannot happen with an intact cache (memo values are pure); a
        // corrupted entry is repaired by solving from scratch.
        FARM_LOG(kWarn) << "incremental placement: spliced result failed "
                           "validation (" << errors.front()
                        << "); falling back to full solve";
        FARM_PROF_COUNT("placement.incremental.fallbacks", 1);
        stats_.incremental = false;
        stats_.fell_back = true;
        stats_.fallback_reason = "validation";
        delta = false;
      }
    }
  }
  if (!delta) {
    FARM_PROF_COUNT("placement.incremental.full_solves", 1);
    memo_.clear();
    memo_.prepare(problem);
    result = solve_heuristic(problem, opts);
    memo_.finish(opt_.keep_generations);
  }

  stats_.cache_hits = memo_.hits() - hits0;
  stats_.cache_misses = memo_.misses() - misses0;
  snapshot(problem, result);
  lap("snapshot");
  return result;
}

}  // namespace farm::placement
