// Furrow — profiler cost and overhead gate.
//
// Three sections:
//
//   BM_ProfMicro     — ns per scope (enabled vs runtime-disabled), ns per
//                      counter increment. The runtime-disabled cost is the
//                      price every FARM binary pays for shipping the
//                      instrumentation; under -DFARM_TELEMETRY=OFF both
//                      columns measure the compiled-out no-op.
//   BM_ProfMerge     — snapshot (merge) cost with 1/4/16 live recording
//                      threads, µs per snapshot.
//   BM_ProfOverhead  — the hard gate: the instrumented 10k-seed
//                      solve_heuristic (Fig. 7 top end, same spec as
//                      bench_combine) must be within 2% of the
//                      profiler-off run. Min-of-N paired alternating reps
//                      filters scheduler noise; the bench exits non-zero
//                      when the gate fails, and scripts/verify-all.sh
//                      treats that as fatal.
//
// Side artifacts: BENCH_profiler.json (all numbers + solver counters) and
// BENCH_profiler_collapsed.txt (the collapsed-stack profile of the gated
// solve, ready for flamegraph.pl / speedscope).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "placement/generator.h"
#include "placement/heuristic.h"
#include "telemetry/export.h"
#include "telemetry/prof.h"

using namespace farm;
using namespace farm::telemetry;
using prof::ProfNode;
using prof::Profiler;

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Sink defeating dead-code elimination of measured loops.
volatile std::uint64_t g_sink = 0;

double scope_cost_ns(std::size_t n) {
  std::uint64_t t0 = now_ns();
  for (std::size_t i = 0; i < n; ++i) {
    FARM_PROF_SCOPE("bench/spin");
    g_sink = g_sink + 1;
  }
  return static_cast<double>(now_ns() - t0) / static_cast<double>(n);
}

double counter_cost_ns(std::size_t n) {
  std::uint64_t t0 = now_ns();
  for (std::size_t i = 0; i < n; ++i) FARM_PROF_COUNT("bench.ticks", 1);
  return static_cast<double>(now_ns() - t0) / static_cast<double>(n);
}

void fill_tree(int depth) {
  if (depth == 0) return;
  FARM_PROF_SCOPE("lvl");
  fill_tree(depth - 1);
}

// µs per snapshot() with `workers` live threads each holding a recorded
// tree (the live-fold path, the expensive half of a snapshot; retired
// state is a single pre-folded copy).
double merge_cost_us(int workers) {
  Profiler& prof = Profiler::instance();
  prof.reset();
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 64; ++i) {
        FARM_PROF_TASK("bench/fill");
        fill_tree(8);
      }
      FARM_PROF_COUNT("bench.fill", 1);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_relaxed)) std::this_thread::yield();
    });
  }
  while (ready.load() < workers) std::this_thread::yield();
  const int reps = 20;
  std::uint64_t t0 = now_ns();
  for (int i = 0; i < reps; ++i) {
    prof::Snapshot snap = prof.snapshot();
    g_sink = g_sink + snap.root.total_ns + snap.root.children.size();
  }
  double us = static_cast<double>(now_ns() - t0) / 1e3 / reps;
  go.store(true);
  for (std::thread& t : threads) t.join();
  prof.reset();
  return us;
}

// Every node's children must fit inside it (no clamping fired) — the
// collapsed file's invariant that self-time sums never exceed totals.
bool reconciles(const ProfNode& node) {
  std::uint64_t child_total = 0;
  for (const ProfNode& c : node.children) {
    if (!reconciles(c)) return false;
    child_total += c.total_ns;
  }
  return child_total <= node.total_ns &&
         node.self_ns == node.total_ns - child_total;
}

}  // namespace

int main() {
  bench::BenchJson json("profiler");
  Profiler& prof = Profiler::instance();
  std::printf("Furrow — profiler cost & overhead gate (telemetry %s)\n\n",
              Profiler::compiled_in() ? "compiled in" : "compiled OUT");
  json.record("compiled_in", Profiler::compiled_in() ? 1 : 0, "bool");

  // --- BM_ProfMicro -------------------------------------------------------
  const std::size_t n = 500000;
  prof.set_enabled(true);
  prof.reset();
  scope_cost_ns(n / 8);  // warm up: allocate the node once
  double scope_on = scope_cost_ns(n);
  double counter_on = counter_cost_ns(n);
  prof.set_enabled(false);
  double scope_off = scope_cost_ns(n);
  double counter_off = counter_cost_ns(n);
  prof.set_enabled(true);
  prof.reset();
  std::printf("BM_ProfMicro — %zu iterations\n", n);
  std::printf("%24s | %10s %10s\n", "", "enabled", "disabled");
  std::printf("%24s | %9.1fns %9.1fns\n", "scope", scope_on, scope_off);
  std::printf("%24s | %9.1fns %9.1fns\n\n", "counter", counter_on,
              counter_off);
  json.record("scope_ns", scope_on, "ns", {bench::param("enabled", 1)});
  json.record("scope_ns", scope_off, "ns", {bench::param("enabled", 0)});
  json.record("counter_ns", counter_on, "ns", {bench::param("enabled", 1)});
  json.record("counter_ns", counter_off, "ns", {bench::param("enabled", 0)});

  // --- BM_ProfMerge -------------------------------------------------------
  std::printf("BM_ProfMerge — snapshot cost vs live recording threads\n");
  std::printf("%8s | %12s\n", "workers", "us/snapshot");
  for (int workers : {1, 4, 16}) {
    double us = merge_cost_us(workers);
    std::printf("%8d | %12.1f\n", workers, us);
    json.record("snapshot_us", us, "us", {bench::param("workers", workers)});
  }
  std::printf("\n");

  // --- BM_ProfOverhead ----------------------------------------------------
  placement::GeneratorSpec spec;
  spec.n_switches = 1040;
  spec.n_tasks = 10;
  spec.seeds_per_task = 1000;  // 10k seeds, Fig. 7 top end
  spec.seed = 42;
  placement::PlacementProblem problem = placement::generate_problem(spec);
  placement::HeuristicOptions opt;
  opt.threads = 1;  // sequential: no pool scheduling noise in the gate

  int reps = 3;
  if (const char* env = std::getenv("FARM_BENCH_REPS"); env && *env)
    reps = std::max(1, std::atoi(env));
  std::printf("BM_ProfOverhead — 10k-seed solve, profiler on vs off, "
              "min of %d paired reps\n", reps);
  double best_off = 1e300, best_on = 1e300;
  prof::Snapshot profile;  // of the last instrumented rep
  for (int rep = 0; rep < reps; ++rep) {
    prof.set_enabled(false);
    prof.reset();
    placement::PlacementResult off = placement::solve_heuristic(problem, opt);
    best_off = std::min(best_off, off.solve_seconds);
    prof.set_enabled(true);
    prof.reset();
    placement::PlacementResult on = placement::solve_heuristic(problem, opt);
    best_on = std::min(best_on, on.solve_seconds);
    profile = prof.snapshot();
    std::printf("  rep %d: off %.3fs on %.3fs\n", rep, off.solve_seconds,
                on.solve_seconds);
  }
  double overhead_pct = (best_on - best_off) / best_off * 100.0;
  std::printf("  min: off %.3fs on %.3fs → overhead %+.2f%% (gate ≤ 2%%)\n",
              best_off, best_on, overhead_pct);
  json.record("solve_seconds", best_off, "s", {bench::param("profiler", 0)});
  json.record("solve_seconds", best_on, "s", {bench::param("profiler", 1)});
  json.record("overhead_pct", overhead_pct, "%");

  // Solver counters from the instrumented run — the numbers `farm report`
  // surfaces next to the flamegraph.
  std::uint64_t pivots = profile.counter("lp.simplex.pivots");
  std::uint64_t milp_nodes = profile.counter("lp.milp.nodes");
  std::uint64_t applied = profile.counter("placement.migration.applied");
  std::uint64_t rejected = profile.counter("placement.migration.rejected");
  std::printf("  counters: lp.simplex.pivots=%llu lp.milp.nodes=%llu "
              "migration applied=%llu rejected=%llu\n",
              static_cast<unsigned long long>(pivots),
              static_cast<unsigned long long>(milp_nodes),
              static_cast<unsigned long long>(applied),
              static_cast<unsigned long long>(rejected));
  json.record("simplex_pivots", static_cast<double>(pivots), "count");
  json.record("milp_nodes", static_cast<double>(milp_nodes), "count");
  json.record("migration_applied", static_cast<double>(applied), "count");
  json.record("migration_rejected", static_cast<double>(rejected), "count");

  // Collapsed-stack artifact + reconciliation: children fit inside parents
  // everywhere, so self-time sums can never exceed totals.
  bool reconciled = reconciles(profile.root);
  bool counters_seen = !Profiler::compiled_in() || pivots > 0;
  {
    std::ofstream os(bench::bench_output_dir() /
                     "BENCH_profiler_collapsed.txt");
    write_prof_collapsed(os, profile);
  }
  std::printf("  reconciled=%s counters_seen=%s "
              "(BENCH_profiler_collapsed.txt written)\n\n",
              reconciled ? "yes" : "NO", counters_seen ? "yes" : "NO");
  json.record("reconciled", reconciled ? 1 : 0, "bool");

  bool gate = overhead_pct <= 2.0 && reconciled && counters_seen;
  std::printf("%s\n", gate ? "OVERHEAD GATE: PASS" : "OVERHEAD GATE: FAIL");
  return gate ? 0 : 1;
}
